package uarch

import (
	"strings"
	"testing"

	"fastsim/internal/asm"
	"fastsim/internal/direct"
	"fastsim/internal/isa"
	"fastsim/internal/program"
)

// fakeEnv scripts the pipeline's environment: control outcomes are served
// in order, loads complete after a fixed delay, and every interaction is
// recorded for assertions.
type fakeEnv struct {
	t        *testing.T
	outcomes []Outcome
	next     int

	loadDelay int // first interval returned for loads
	pollMore  int // 0: ready at first poll; else one more interval

	issuedLoads  []int
	polledLoads  []int
	issuedStores []int
	cancels      []int
	rollbacks    []int
	rollLQ       int
	rollSQ       int
	popInsts     int
	popLoads     int
	popStores    int
	popRecs      int
	halted       bool

	polls map[int]int // per-load poll count
}

func newFakeEnv(t *testing.T) *fakeEnv {
	return &fakeEnv{t: t, loadDelay: 2, polls: map[int]int{}}
}

func (f *fakeEnv) NextOutcome() Outcome {
	if f.next >= len(f.outcomes) {
		f.t.Fatalf("fetch requested outcome %d, only %d scripted", f.next, len(f.outcomes))
	}
	o := f.outcomes[f.next]
	o.RecIdx = f.next
	f.next++
	return o
}

func (f *fakeEnv) IssueLoad(lq int, now uint64) int {
	f.issuedLoads = append(f.issuedLoads, lq)
	return f.loadDelay
}

func (f *fakeEnv) PollLoad(lq int, now uint64) (bool, int) {
	f.polledLoads = append(f.polledLoads, lq)
	f.polls[lq]++
	if f.pollMore > 0 && f.polls[lq] == 1 {
		return false, f.pollMore
	}
	return true, 0
}

func (f *fakeEnv) CancelLoad(lq int) { f.cancels = append(f.cancels, lq) }

func (f *fakeEnv) IssueStore(sq int, now uint64) { f.issuedStores = append(f.issuedStores, sq) }

func (f *fakeEnv) Rollback(rec int) (int, int) {
	f.rollbacks = append(f.rollbacks, rec)
	return f.rollLQ, f.rollSQ
}

func (f *fakeEnv) RetirePop(insts, loads, stores, recs int) {
	f.popInsts += insts
	f.popLoads += loads
	f.popStores += stores
	f.popRecs += recs
}

func (f *fakeEnv) HaltRetired() { f.halted = true }

func buildProg(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := asm.Assemble("u.s", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runToDone(t *testing.T, pl *Pipeline, maxCycles int) {
	t.Helper()
	for i := 0; !pl.Done(); i++ {
		if i > maxCycles {
			t.Fatalf("pipeline did not finish within %d cycles", maxCycles)
		}
		pl.Step()
	}
}

func haltOutcome(pc uint32) Outcome {
	return Outcome{Kind: direct.KindHalt, PC: pc}
}

func TestStraightLineRetiresAll(t *testing.T) {
	p := buildProg(t, `
main:
	addi t0, zero, 1
	addi t1, zero, 2
	add  t2, t0, t1
	halt
`)
	env := newFakeEnv(t)
	env.outcomes = []Outcome{haltOutcome(p.Entry + 12)}
	pl, err := New(DefaultParams(), p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	runToDone(t, pl, 100)
	if !env.halted {
		t.Fatal("halt not reported")
	}
	if env.popInsts != 4 {
		t.Errorf("retired %d, want 4", env.popInsts)
	}
	if env.popRecs != 1 {
		t.Errorf("records popped %d, want 1", env.popRecs)
	}
	if pl.Now < 5 || pl.Now > 20 {
		t.Errorf("cycles = %d, implausible", pl.Now)
	}
}

func TestDependentChainSlower(t *testing.T) {
	dep := buildProg(t, `
main:
	add t0, t0, t1
	add t0, t0, t1
	add t0, t0, t1
	add t0, t0, t1
	add t0, t0, t1
	add t0, t0, t1
	halt
`)
	ind := buildProg(t, `
main:
	add t0, t0, t1
	add t2, t3, t4
	add t5, t6, t7
	add t8, t9, t1
	add s0, s1, s2
	add s3, s4, s5
	halt
`)
	run := func(p *program.Program) uint64 {
		env := newFakeEnv(t)
		env.outcomes = []Outcome{haltOutcome(p.Entry + 24)}
		pl, err := New(DefaultParams(), p, env, p.Entry)
		if err != nil {
			t.Fatal(err)
		}
		runToDone(t, pl, 200)
		return pl.Now
	}
	d, i := run(dep), run(ind)
	if d <= i {
		t.Errorf("dependent chain %d cycles, independent %d: no dependence modelling", d, i)
	}
}

func TestLoadIssueAndPoll(t *testing.T) {
	p := buildProg(t, `
main:
	lw  t0, 0(sp)
	add t1, t0, t0
	halt
`)
	env := newFakeEnv(t)
	env.loadDelay = 5
	env.pollMore = 7 // miss revealed on first poll
	env.outcomes = []Outcome{haltOutcome(p.Entry + 8)}
	pl, err := New(DefaultParams(), p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	runToDone(t, pl, 200)
	if len(env.issuedLoads) != 1 || env.issuedLoads[0] != 0 {
		t.Errorf("issued loads = %v", env.issuedLoads)
	}
	if len(env.polledLoads) != 2 {
		t.Errorf("polled %d times, want 2 (interval protocol)", len(env.polledLoads))
	}
	// The dependent add must wait for the full 5+7 cycles of cache time.
	if pl.Now < 12 {
		t.Errorf("cycles = %d, load latency not respected", pl.Now)
	}
	if env.popLoads != 1 {
		t.Errorf("load pops = %d", env.popLoads)
	}
}

func TestStoresIssueInOrder(t *testing.T) {
	p := buildProg(t, `
main:
	sw t0, 0(sp)
	sw t1, 4(sp)
	sw t2, 8(sp)
	halt
`)
	env := newFakeEnv(t)
	env.outcomes = []Outcome{haltOutcome(p.Entry + 12)}
	pl, err := New(DefaultParams(), p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	runToDone(t, pl, 200)
	if len(env.issuedStores) != 3 {
		t.Fatalf("stores issued: %v", env.issuedStores)
	}
	for i, s := range env.issuedStores {
		if s != i {
			t.Errorf("store order %v, want 0,1,2", env.issuedStores)
			break
		}
	}
	if env.popStores != 3 {
		t.Errorf("store pops = %d", env.popStores)
	}
}

func TestBranchCorrectPrediction(t *testing.T) {
	p := buildProg(t, `
main:
	beq t0, t1, target
	addi t2, zero, 1
	halt
target:
	halt
`)
	// Not-taken, correctly predicted: fall through to the first halt.
	env := newFakeEnv(t)
	env.outcomes = []Outcome{
		{Kind: direct.KindBranch, PC: p.Entry, Taken: false, Mispredicted: false},
		haltOutcome(p.Entry + 8),
	}
	pl, err := New(DefaultParams(), p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	runToDone(t, pl, 100)
	if len(env.rollbacks) != 0 {
		t.Errorf("rollbacks on a correct prediction: %v", env.rollbacks)
	}
	if env.popInsts != 3 {
		t.Errorf("retired %d, want 3", env.popInsts)
	}
}

func TestBranchMispredictSquashAndRollback(t *testing.T) {
	p := buildProg(t, `
main:
	lw  t0, 0(sp)       # slow producer: delays the branch's resolution
	beq t0, t1, target
	lw  t2, 4(sp)       # wrong path: an in-flight load to cancel
	addi t3, zero, 1
	halt
target:
	halt
`)
	// Actually taken but predicted not-taken: fetch goes down the fall-
	// through (wrong) path, then the branch resolves and redirects.
	env := newFakeEnv(t)
	env.loadDelay = 50 // both loads linger; the branch waits on the first
	env.outcomes = []Outcome{
		{Kind: direct.KindBranch, PC: p.Entry + 4, Taken: true, Mispredicted: true},
		haltOutcome(p.Entry + 16), // wrong-path halt record
		haltOutcome(p.Entry + 20), // correct-path halt record
	}
	env.rollLQ, env.rollSQ = 1, 0
	pl, err := New(DefaultParams(), p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	runToDone(t, pl, 500)
	if len(env.rollbacks) != 1 || env.rollbacks[0] != 0 {
		t.Fatalf("rollbacks = %v, want [0]", env.rollbacks)
	}
	if len(env.cancels) != 1 || env.cancels[0] != 1 {
		t.Errorf("cancels = %v, want wrong-path load (lQ slot 1) cancelled", env.cancels)
	}
	// The committed load, the branch and the target-side halt retire.
	if env.popInsts != 3 {
		t.Errorf("retired %d, want 3", env.popInsts)
	}
}

func TestSpeculationDepthLimit(t *testing.T) {
	// Five unresolved branches in a row: fetch must stop at 4.
	p := buildProg(t, `
main:
	beq t0, t1, x1
x1:	beq t0, t1, x2
x2:	beq t0, t1, x3
x3:	beq t0, t1, x4
x4:	beq t0, t1, x5
x5:	halt
`)
	env := newFakeEnv(t)
	for i := 0; i < 5; i++ {
		env.outcomes = append(env.outcomes,
			Outcome{Kind: direct.KindBranch, PC: p.Entry + uint32(4*i), Taken: true})
	}
	env.outcomes = append(env.outcomes, haltOutcome(p.Entry+20))
	pl, err := New(DefaultParams(), p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	maxUnresolved := 0
	for i := 0; !pl.Done() && i < 300; i++ {
		pl.Step()
		n := 0
		for _, e := range pl.Entries() {
			if e.Class == isa.ClassBranch && e.Stage != StDone {
				n++
			}
		}
		if n > maxUnresolved {
			maxUnresolved = n
		}
	}
	if !pl.Done() {
		t.Fatal("did not finish")
	}
	if maxUnresolved > DefaultParams().MaxSpecBranches {
		t.Errorf("unresolved branches reached %d, limit %d",
			maxUnresolved, DefaultParams().MaxSpecBranches)
	}
}

func TestJalrStallsFetchUntilResolved(t *testing.T) {
	p := buildProg(t, `
main:
	jalr zero, t0, 0
after:
	halt
`)
	env := newFakeEnv(t)
	env.outcomes = []Outcome{
		{Kind: direct.KindIJump, PC: p.Entry, Taken: true, Target: p.Entry + 4},
		haltOutcome(p.Entry + 4),
	}
	pl, err := New(DefaultParams(), p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	sawStall := false
	for i := 0; !pl.Done() && i < 100; i++ {
		pl.Step()
		es := pl.Entries()
		if len(es) == 1 && es[0].Class == isa.ClassJumpInd && es[0].Stage != StDone {
			sawStall = true
		}
	}
	if !pl.Done() {
		t.Fatal("did not finish")
	}
	if !sawStall {
		t.Error("fetch did not stall behind the unresolved jalr")
	}
}

func TestWrongPathStallRecord(t *testing.T) {
	// A mispredicted branch whose wrong path falls off the text segment:
	// fetch must consume the stall record and park until the rollback.
	p := buildProg(t, `
main:
	beq t0, t1, target
target:
	halt
`)
	// Predicted taken (wrongly): taken target is 'target'; actual is the
	// fall-through... invert: actual not-taken, predicted taken. Wrong
	// path = target chain; make the *predicted* path run off text by
	// branching to the very end.
	env := newFakeEnv(t)
	env.outcomes = []Outcome{
		{Kind: direct.KindBranch, PC: p.Entry, Taken: false, Mispredicted: true},
		// fetch follows predicted-taken to 'target' (valid), so it will
		// fetch halt there; serve its record, then the stall never
		// happens — instead serve correct-path halt after rollback.
		haltOutcome(p.Entry + 4),
		haltOutcome(p.Entry + 4),
	}
	pl, err := New(DefaultParams(), p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	runToDone(t, pl, 200)
	if len(env.rollbacks) != 1 {
		t.Errorf("rollbacks = %v", env.rollbacks)
	}
}

func TestRetireWidthLimit(t *testing.T) {
	p := buildProg(t, `
main:
	addi t0, zero, 1
	addi t1, zero, 1
	addi t2, zero, 1
	addi t3, zero, 1
	addi t4, zero, 1
	addi t5, zero, 1
	addi t6, zero, 1
	addi t7, zero, 1
	halt
`)
	env := newFakeEnv(t)
	env.outcomes = []Outcome{haltOutcome(p.Entry + 32)}
	params := DefaultParams()
	pl, err := New(params, p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for i := 0; !pl.Done() && i < 100; i++ {
		pl.Step()
		retiredThisCycle := env.popInsts - prev
		if retiredThisCycle > params.RetireWidth {
			t.Fatalf("retired %d in one cycle, width %d", retiredThisCycle, params.RetireWidth)
		}
		prev = env.popInsts
	}
}

func TestIssueQueueCapacity(t *testing.T) {
	// More independent loads than the 16-entry address queue: occupancy
	// must never exceed the cap.
	src := "main:\n"
	for i := 0; i < 24; i++ {
		src += "\tlw t0, 0(sp)\n"
	}
	src += "\thalt\n"
	p := buildProg(t, src)
	env := newFakeEnv(t)
	env.loadDelay = 60 // loads linger
	env.outcomes = []Outcome{haltOutcome(p.Entry + 24*4)}
	params := DefaultParams()
	pl, err := New(params, p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !pl.Done() && i < 3000; i++ {
		pl.Step()
		occ := 0
		for _, e := range pl.Entries() {
			if e.Stage == StQueued && e.Class.Queue() == isa.QueueAddr {
				occ++
			}
		}
		if occ > params.AddrQueue {
			t.Fatalf("address queue occupancy %d > %d", occ, params.AddrQueue)
		}
	}
	if !pl.Done() {
		t.Fatal("did not finish")
	}
}

func TestPhysicalRegisterLimit(t *testing.T) {
	// A long run of integer defs with a stuck oldest instruction: in-flight
	// defs must never exceed PhysInt - 32.
	src := "main:\n\tlw s0, 0(sp)\n"
	for i := 0; i < 40; i++ {
		src += "\taddi t0, s0, 1\n" // all depend on the slow load
	}
	src += "\thalt\n"
	p := buildProg(t, src)
	env := newFakeEnv(t)
	env.loadDelay = 200
	env.outcomes = []Outcome{haltOutcome(p.Entry + 41*4)}
	params := DefaultParams()
	pl, err := New(params, p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !pl.Done() && i < 5000; i++ {
		pl.Step()
		defs := 0
		for _, e := range pl.Entries() {
			if e.Stage == StFetched {
				continue
			}
			if d := e.Inst.Def(); d != isa.RegNone && !d.IsFP() {
				defs++
			}
		}
		if defs > params.PhysInt-isa.NumIntRegs {
			t.Fatalf("in-flight int defs %d > %d", defs, params.PhysInt-isa.NumIntRegs)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { p.FetchWidth = 0 },
		func(p *Params) { p.IntQueue = 0 },
		func(p *Params) { p.IntALUs = 0 },
		func(p *Params) { p.PhysInt = 32 },
		func(p *Params) { p.MaxSpecBranches = -1 },
		func(p *Params) { p.ActiveList = 0 },
		func(p *Params) { p.ActiveList = 300 },
	}
	for i, mut := range cases {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
	}
	if _, err := New(Params{}, nil, nil, 0); err == nil {
		t.Error("New accepted zero params")
	}
}

func TestNonPipelinedDivide(t *testing.T) {
	// Two independent divides cannot overlap: the second must wait for the
	// first to leave the (non-pipelined) divider.
	p := buildProg(t, `
main:
	div t0, t1, t2
	div t3, t4, t5
	halt
`)
	env := newFakeEnv(t)
	env.outcomes = []Outcome{haltOutcome(p.Entry + 8)}
	pl, err := New(DefaultParams(), p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	runToDone(t, pl, 500)
	// One divide is 34 cycles; two serialized > 68.
	if pl.Now < 68 {
		t.Errorf("two divides finished in %d cycles — divider seems pipelined", pl.Now)
	}
}

// BenchmarkDetailedCycle measures the raw cost of one detailed-simulation
// cycle — the cost fast-forwarding avoids. Compare with the replay cost in
// the repository root's BenchmarkComponents.
func BenchmarkDetailedCycle(b *testing.B) {
	src := "main:\n"
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			src += "\tadd t0, t1, t2\n"
		case 1:
			src += "\tmul t3, t4, t5\n"
		case 2:
			src += "\txor t6, t7, t8\n"
		case 3:
			src += "\taddi t9, t9, 1\n"
		}
	}
	src += "\thalt\n"
	p, err := asm.Assemble("b.s", src)
	if err != nil {
		b.Fatal(err)
	}
	env := newFakeEnv(&testing.T{})
	env.outcomes = []Outcome{haltOutcome(p.Entry + 200*4)}
	cycles := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.next = 0
		env.halted = false
		pl, _ := New(DefaultParams(), p, env, p.Entry)
		for !pl.Done() {
			pl.Step()
			cycles++
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
}

// BenchmarkEncodeConfig measures the configuration snapshot cost paid at
// every episode boundary in detailed mode.
func BenchmarkEncodeConfig(b *testing.B) {
	p, err := asm.Assemble("b.s", `
main:
	lw   t0, 0(sp)
	add  t1, t0, t0
	mul  t2, t1, t1
	beq  t2, t0, main
	halt
`)
	if err != nil {
		b.Fatal(err)
	}
	env := newFakeEnv(&testing.T{})
	env.loadDelay = 100
	env.outcomes = []Outcome{
		{Kind: direct.KindBranch, PC: p.Entry + 12, Taken: false},
		haltOutcome(p.Entry + 16),
	}
	pl, _ := New(DefaultParams(), p, env, p.Entry)
	for i := 0; i < 6; i++ {
		pl.Step() // fill the iQ
	}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = pl.EncodeConfig(buf[:0])
	}
	b.ReportMetric(float64(len(buf)), "bytes")
}

func TestActiveListCap(t *testing.T) {
	// A stuck oldest load with plenty of independent work behind it: the
	// iQ must never exceed the active-list size.
	src := "main:\n\tlw s0, 0(sp)\n\tadd s1, s0, s0\n" // consumer pins retirement
	for i := 0; i < 60; i++ {
		src += "\taddi t0, zero, 1\n"
	}
	src += "\thalt\n"
	p := buildProg(t, src)
	env := newFakeEnv(t)
	env.loadDelay = 300
	env.outcomes = []Outcome{haltOutcome(p.Entry + 62*4)}
	params := DefaultParams()
	pl, err := New(params, p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	maxIQ := 0
	for i := 0; !pl.Done() && i < 5000; i++ {
		pl.Step()
		if n := len(pl.Entries()); n > maxIQ {
			maxIQ = n
		}
	}
	if !pl.Done() {
		t.Fatal("did not finish")
	}
	if maxIQ > params.ActiveList {
		t.Errorf("iQ reached %d entries, active list is %d", maxIQ, params.ActiveList)
	}
	if maxIQ < params.ActiveList {
		t.Errorf("iQ only reached %d — the stall did not fill the window", maxIQ)
	}
}

func TestStageStringsAndDesync(t *testing.T) {
	for s := StFetched; s < numStages; s++ {
		if s.String() == "" {
			t.Errorf("stage %d has no name", s)
		}
	}
	d := Desync{Msg: "boom"}
	if !strings.Contains(d.Error(), "boom") {
		t.Error("Desync.Error")
	}
	if errParams("x").Error() != "uarch: x" {
		t.Error("errParams.Error")
	}
	defer func() {
		if recover() == nil {
			t.Error("desync() did not panic")
		}
	}()
	desync("test %d", 42)
}

func TestDumpConfig(t *testing.T) {
	p := buildProg(t, `
main:
	lw  t0, 0(sp)
	beq t0, t1, main
	halt
`)
	env := newFakeEnv(t)
	env.loadDelay = 40
	env.outcomes = []Outcome{
		{Kind: direct.KindBranch, PC: p.Entry + 4, Taken: false},
		haltOutcome(p.Entry + 8),
	}
	pl, err := New(DefaultParams(), p, env, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		pl.Step()
	}
	key := pl.EncodeConfig(nil)
	out := DumpConfig(p, key)
	for _, want := range []string{"fetch=", "lw", "beq", "taken=false"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(DumpConfig(p, []byte{1}), "bad config") {
		t.Error("bad key not reported")
	}
	runToDone(t, pl, 300)
}
