package workloads

// The ten SPEC95 floating-point workloads. Regular loop nests over arrays,
// as in the originals: tiny p-action caches, near-1.0 cycles/config, and
// very long replay chains (paper Table 5).

func init() {
	register(&Workload{
		Name: "101.tomcatv", Category: FP,
		Description: "mesh-generation stand-in: 5-point Jacobi relaxation on a 64x64 grid",
		Source:      tomcatvSource,
	})
	register(&Workload{
		Name: "102.swim", Category: FP,
		Description: "shallow-water stand-in: three coupled 64x64 difference updates",
		Source:      swimSource,
	})
	register(&Workload{
		Name: "103.su2cor", Category: FP,
		Description: "quantum-physics stand-in: 16x16 matrix-vector products and vector axpy",
		Source:      su2corSource,
	})
	register(&Workload{
		Name: "104.hydro2d", Category: FP,
		Description: "hydrodynamics stand-in: flux differences with min/max limiter and divides",
		Source:      hydro2dSource,
	})
	register(&Workload{
		Name: "107.mgrid", Category: FP,
		Description: "multigrid stand-in: 7-point relaxation on two 3D grid levels",
		Source:      mgridSource,
	})
	register(&Workload{
		Name: "110.applu", Category: FP,
		Description: "LU-solver stand-in: 4x4 block forward solves with per-row divides",
		Source:      appluSource,
	})
	register(&Workload{
		Name: "125.turb3d", Category: FP,
		Description: "turbulence stand-in: radix-2 FFT butterflies over 256-point rows",
		Source:      turb3dSource,
	})
	register(&Workload{
		Name: "141.apsi", Category: FP,
		Description: "meteorology stand-in: tridiagonal Thomas solves plus an advection stencil",
		Source:      apsiSource,
	})
	register(&Workload{
		Name: "145.fpppp", Category: FP,
		Description: "quantum-chemistry stand-in: enormous straight-line FP basic blocks",
		Source:      fppppSource,
	})
	register(&Workload{
		Name: "146.wave5", Category: FP,
		Description: "particle-in-cell stand-in: gather/scatter field interpolation " +
			"with data-dependent indices",
		Source: wave5Source,
	})
}

// fpFill emits a loop writing n doubles in (-1, 1) at base. Clobbers
// t0-t3 and f0-f1.
func (g *gen) fpFill(base string, n, seed int) {
	loop := g.newLabel("ffill")
	g.f("\tla   t0, %s", base)
	g.f("\tli   t1, %d", seed|1)
	g.f("\tli   t2, %d", n)
	g.f("\tli   t3, 4096")
	g.f("\tcvtif f1, t3")
	g.f("%s:", loop)
	g.f("\tli   t3, 1103515245")
	g.f("\tmul  t1, t1, t3")
	g.f("\taddi t1, t1, 4321")
	g.f("\tsrli t3, t1, 12")
	g.f("\tandi t3, t3, 0x1FFF")
	g.f("\taddi t3, t3, -4096")
	g.f("\tcvtif f0, t3")
	g.f("\tfdiv f0, f0, f1")
	g.f("\tfsd  f0, 0(t0)")
	g.f("\taddi t0, t0, 8")
	g.f("\taddi t2, t2, -1")
	g.f("\tbnez t2, %s", loop)
}

// checkFP folds an FP register (scaled to expose fractional bits) into the
// checksum. Clobbers a0 and f30-f31.
func (g *gen) checkFP(reg string) {
	g.f("\tli   a0, 65536")
	g.f("\tcvtif f30, a0")
	g.f("\tfmul f31, %s, f30", reg)
	g.f("\tcvtfi a0, f31")
	g.f("\tsys  2")
}

// tomcatvSource: Jacobi relaxation with double buffering.
func tomcatvSource(scale float64) string {
	const n = 64
	g := &gen{}
	g.f(".data")
	g.f(".align 8")
	g.f("ga:\t.space %d", n*n*8)
	g.f("gb:\t.space %d", n*n*8)
	g.f("consts:\t.double 0.2475, 0.01")
	g.f(".text")
	g.f("main:")
	g.fpFill("ga", n*n, 17)
	g.f("\tla   t0, consts")
	g.f("\tfld  f10, 0(t0)") // 0.2475 (slightly under 1/4 for stability)
	g.f("\tfld  f11, 8(t0)") // damping
	g.f("\tli   s1, %d", iters(26, scale))
	g.f("\tla   s2, ga")
	g.f("\tla   s3, gb")
	g.f("sweep:")
	g.f("\tli   s4, 1") // row
	g.f("row:")
	g.f("\tli   s5, 1") // col
	// row base pointers
	g.f("\tslli t0, s4, %d", 9) // row*64*8
	g.f("\tadd  t1, s2, t0")    // src row
	g.f("\tadd  t2, s3, t0")    // dst row
	g.f("col:")
	g.f("\tslli t3, s5, 3")
	g.f("\tadd  t4, t1, t3") // &src[row][col]
	g.f("\tfld  f1, -8(t4)")
	g.f("\tfld  f2, 8(t4)")
	g.f("\tfld  f3, %d(t4)", -n*8)
	g.f("\tfld  f4, %d(t4)", n*8)
	g.f("\tfld  f5, 0(t4)")
	g.f("\tfadd f6, f1, f2")
	g.f("\tfadd f7, f3, f4")
	g.f("\tfadd f6, f6, f7")
	g.f("\tfmul f6, f6, f10")
	g.f("\tfmul f8, f5, f11")
	g.f("\tfsub f6, f6, f8")
	g.f("\tadd  t5, t2, t3")
	g.f("\tfsd  f6, 0(t5)")
	g.f("\tfadd f20, f20, f6") // residual accumulator
	g.f("\taddi s5, s5, 1")
	g.f("\tli   t6, %d", n-1)
	g.f("\tblt  s5, t6, col")
	g.f("\taddi s4, s4, 1")
	g.f("\tblt  s4, t6, row")
	// swap buffers
	g.f("\tmv   t0, s2")
	g.f("\tmv   s2, s3")
	g.f("\tmv   s3, t0")
	g.f("\taddi s1, s1, -1")
	g.f("\tbnez s1, sweep")
	g.checkFP("f20")
	g.exit()
	return g.String()
}

// swimSource: three coupled difference updates per timestep.
func swimSource(scale float64) string {
	const n = 64
	g := &gen{}
	g.f(".data")
	g.f(".align 8")
	g.f("gu:\t.space %d", n*n*8)
	g.f("gv:\t.space %d", n*n*8)
	g.f("gp:\t.space %d", n*n*8)
	g.f("sc:\t.double 0.05, 0.02")
	g.f(".text")
	g.f("main:")
	g.fpFill("gu", n*n, 3)
	g.fpFill("gv", n*n, 7)
	g.fpFill("gp", n*n, 11)
	g.f("\tla   t0, sc")
	g.f("\tfld  f10, 0(t0)")
	g.f("\tfld  f11, 8(t0)")
	g.f("\tli   s1, %d", iters(22, scale))
	g.f("\tla   s2, gu")
	g.f("\tla   s3, gv")
	g.f("\tla   s4, gp")
	g.f("step:")
	// calc1: u += c1*(p[i,j+1] - p[i,j])
	g.f("\tli   s5, %d", n*(n-1)-1) // linear index, skip last col/row edges loosely
	g.f("c1:")
	g.f("\tslli t0, s5, 3")
	g.f("\tadd  t1, s4, t0")
	g.f("\tfld  f1, 8(t1)")
	g.f("\tfld  f2, 0(t1)")
	g.f("\tfsub f3, f1, f2")
	g.f("\tfmul f3, f3, f10")
	g.f("\tadd  t2, s2, t0")
	g.f("\tfld  f4, 0(t2)")
	g.f("\tfadd f4, f4, f3")
	g.f("\tfsd  f4, 0(t2)")
	g.f("\taddi s5, s5, -1")
	g.f("\tbnez s5, c1")
	// calc2: v += c1*(p[i+1,j] - p[i,j])
	g.f("\tli   s5, %d", n*(n-1)-1)
	g.f("c2:")
	g.f("\tslli t0, s5, 3")
	g.f("\tadd  t1, s4, t0")
	g.f("\tfld  f1, %d(t1)", n*8)
	g.f("\tfld  f2, 0(t1)")
	g.f("\tfsub f3, f1, f2")
	g.f("\tfmul f3, f3, f10")
	g.f("\tadd  t2, s3, t0")
	g.f("\tfld  f4, 0(t2)")
	g.f("\tfadd f4, f4, f3")
	g.f("\tfsd  f4, 0(t2)")
	g.f("\taddi s5, s5, -1")
	g.f("\tbnez s5, c2")
	// calc3: p -= c2*(u[i,j]-u[i,j-1] + v[i,j]-v[i-1,j])
	g.f("\tli   s5, %d", n*(n-1)-1)
	g.f("c3:")
	g.f("\tslli t0, s5, 3")
	g.f("\tadd  t1, s2, t0")
	g.f("\tfld  f1, 0(t1)")
	g.f("\tfld  f2, -8(t1)")
	g.f("\tfsub f1, f1, f2")
	g.f("\tadd  t2, s3, t0")
	g.f("\tfld  f3, 0(t2)")
	g.f("\tfld  f4, %d(t2)", -n*8)
	g.f("\tfsub f3, f3, f4")
	g.f("\tfadd f1, f1, f3")
	g.f("\tfmul f1, f1, f11")
	g.f("\tadd  t3, s4, t0")
	g.f("\tfld  f5, 0(t3)")
	g.f("\tfsub f5, f5, f1")
	g.f("\tfsd  f5, 0(t3)")
	g.f("\tfadd f21, f21, f5")
	g.f("\taddi s5, s5, -1")
	g.f("\tbnez s5, c3")
	g.f("\taddi s1, s1, -1")
	g.f("\tbnez s1, step")
	g.checkFP("f21")
	g.exit()
	return g.String()
}

// su2corSource: dense 16x16 matrix-vector products plus a long axpy.
func su2corSource(scale float64) string {
	const dim = 16
	g := &gen{}
	g.f(".data")
	g.f(".align 8")
	g.f("mat:\t.space %d", dim*dim*8)
	g.f("vx:\t.space %d", dim*8)
	g.f("vy:\t.space %d", dim*8)
	g.f("big1:\t.space %d", 1024*8)
	g.f("big2:\t.space %d", 1024*8)
	g.f("sconst:\t.double 0.125")
	g.f(".text")
	g.f("main:")
	g.fpFill("mat", dim*dim, 13)
	g.fpFill("vx", dim, 19)
	g.fpFill("big1", 1024, 23)
	g.fpFill("big2", 1024, 29)
	g.f("\tla   t0, sconst")
	g.f("\tfld  f10, 0(t0)")
	g.f("\tli   s1, %d", iters(230, scale))
	g.f("\tla   s2, mat")
	g.f("\tla   s3, vx")
	g.f("\tla   s4, vy")
	g.f("iter:")
	// y = M * x
	g.f("\tli   s5, 0") // row
	g.f("mv_row:")
	g.f("\tslli t0, s5, %d", 7) // row*16*8
	g.f("\tadd  t1, s2, t0")    // row ptr
	g.f("\tmv   t2, s3")        // x ptr
	g.f("\tli   t3, %d", dim)
	g.f("\tfsub f1, f1, f1") // acc = 0
	g.f("mv_dot:")
	g.f("\tfld  f2, 0(t1)")
	g.f("\tfld  f3, 0(t2)")
	g.f("\tfmul f4, f2, f3")
	g.f("\tfadd f1, f1, f4")
	g.f("\taddi t1, t1, 8")
	g.f("\taddi t2, t2, 8")
	g.f("\taddi t3, t3, -1")
	g.f("\tbnez t3, mv_dot")
	g.f("\tfmul f1, f1, f10") // keep magnitudes bounded
	g.f("\tslli t4, s5, 3")
	g.f("\tadd  t4, s4, t4")
	g.f("\tfsd  f1, 0(t4)")
	g.f("\taddi s5, s5, 1")
	g.f("\tli   t5, %d", dim)
	g.f("\tblt  s5, t5, mv_row")
	// x <- y (copy back)
	g.f("\tli   t0, %d", dim)
	g.f("\tmv   t1, s3")
	g.f("\tmv   t2, s4")
	g.f("copyx:")
	g.f("\tfld  f1, 0(t2)")
	g.f("\tfsd  f1, 0(t1)")
	g.f("\taddi t1, t1, 8")
	g.f("\taddi t2, t2, 8")
	g.f("\taddi t0, t0, -1")
	g.f("\tbnez t0, copyx")
	// axpy over the big vectors: b1 += 0.125*b2
	g.f("\tla   t1, big1")
	g.f("\tla   t2, big2")
	g.f("\tli   t0, 1024")
	g.f("axpy:")
	g.f("\tfld  f1, 0(t1)")
	g.f("\tfld  f2, 0(t2)")
	g.f("\tfmul f2, f2, f10")
	g.f("\tfadd f1, f1, f2")
	g.f("\tfsd  f1, 0(t1)")
	g.f("\tfadd f22, f22, f1")
	g.f("\taddi t1, t1, 8")
	g.f("\taddi t2, t2, 8")
	g.f("\taddi t0, t0, -1")
	g.f("\tbnez t0, axpy")
	g.f("\taddi s1, s1, -1")
	g.f("\tbnez s1, iter")
	g.checkFP("f22")
	g.exit()
	return g.String()
}

// hydro2dSource: flux differences with a limiter and guarded divides.
func hydro2dSource(scale float64) string {
	const n = 4096
	g := &gen{}
	g.f(".data")
	g.f(".align 8")
	g.f("ha:\t.space %d", n*8)
	g.f("hf:\t.space %d", n*8)
	g.f("hc:\t.double 0.5, 1.0, 0.001")
	g.f(".text")
	g.f("main:")
	g.fpFill("ha", n, 31)
	g.f("\tla   t0, hc")
	g.f("\tfld  f10, 0(t0)")  // 0.5
	g.f("\tfld  f11, 8(t0)")  // 1.0
	g.f("\tfld  f12, 16(t0)") // eps
	g.f("\tli   s1, %d", iters(30, scale))
	g.f("\tla   s2, ha")
	g.f("\tla   s3, hf")
	g.f("pass:")
	g.f("\tli   s5, %d", n-2)
	g.f("cell:")
	g.f("\tslli t0, s5, 3")
	g.f("\tadd  t1, s2, t0")
	g.f("\tfld  f1, 0(t1)")
	g.f("\tfld  f2, -8(t1)")
	g.f("\tfld  f3, 8(t1)")
	g.f("\tfsub f4, f1, f2") // d1
	g.f("\tfsub f5, f3, f1") // d2
	// limiter: slope = minmod-ish via fmin/fmax
	g.f("\tfmin f6, f4, f5")
	g.f("\tfmax f7, f4, f5")
	g.f("\tfadd f6, f6, f7")
	g.f("\tfmul f6, f6, f10")
	// ratio with guarded denominator: r = d1 / (|d2| + eps)
	g.f("\tfabs f8, f5")
	g.f("\tfadd f8, f8, f12")
	g.f("\tfdiv f9, f4, f8")
	g.f("\tfadd f6, f6, f9")
	g.f("\tadd  t2, s3, t0")
	g.f("\tfsd  f6, 0(t2)")
	g.f("\tfadd f23, f23, f9")
	g.f("\taddi s5, s5, -1")
	g.f("\tbnez s5, cell")
	// fold flux back with damping so values stay bounded
	g.f("\tli   s5, %d", n-2)
	g.f("fold:")
	g.f("\tslli t0, s5, 3")
	g.f("\tadd  t1, s2, t0")
	g.f("\tadd  t2, s3, t0")
	g.f("\tfld  f1, 0(t1)")
	g.f("\tfld  f2, 0(t2)")
	g.f("\tfmul f2, f2, f12")
	g.f("\tfadd f1, f1, f2")
	g.f("\tfsd  f1, 0(t1)")
	g.f("\taddi s5, s5, -1")
	g.f("\tbnez s5, fold")
	g.f("\taddi s1, s1, -1")
	g.f("\tbnez s1, pass")
	g.checkFP("f23")
	g.exit()
	return g.String()
}

// mgridSource: 7-point relaxation on a 16^3 fine grid and an 8^3 coarse
// grid — the paper's most regular benchmark (1.0 cycles/config).
func mgridSource(scale float64) string {
	const nf, nc = 16, 8
	g := &gen{}
	g.f(".data")
	g.f(".align 8")
	g.f("fine:\t.space %d", nf*nf*nf*8)
	g.f("coarse:\t.space %d", nc*nc*nc*8)
	g.f("mc:\t.double 0.16, 0.04")
	g.f(".text")
	g.f("main:")
	g.fpFill("fine", nf*nf*nf, 37)
	g.f("\tla   t0, mc")
	g.f("\tfld  f10, 0(t0)")
	g.f("\tfld  f11, 8(t0)")
	g.f("\tli   s1, %d", iters(13, scale))
	g.f("vcycle:")
	// Two relaxation sweeps on the fine grid.
	for sweep := 0; sweep < 2; sweep++ {
		g.relax3d(fmtLbl("fr", sweep), "fine", nf)
	}
	// Restrict: coarse[i] = fine[2i] (injection).
	g.f("\tla   t1, fine")
	g.f("\tla   t2, coarse")
	g.f("\tli   s5, %d", nc*nc*nc)
	g.f("restrict:")
	// A crude index map: take every 8th fine element.
	g.f("\tfld  f1, 0(t1)")
	g.f("\tfsd  f1, 0(t2)")
	g.f("\taddi t1, t1, 64")
	g.f("\taddi t2, t2, 8")
	g.f("\taddi s5, s5, -1")
	g.f("\tbnez s5, restrict")
	// Relax the coarse grid.
	g.relax3d("cr", "coarse", nc)
	// Prolong: fine[8i] += 0.04 * coarse[i].
	g.f("\tla   t1, fine")
	g.f("\tla   t2, coarse")
	g.f("\tli   s5, %d", nc*nc*nc)
	g.f("prolong:")
	g.f("\tfld  f1, 0(t2)")
	g.f("\tfmul f1, f1, f11")
	g.f("\tfld  f2, 0(t1)")
	g.f("\tfadd f2, f2, f1")
	g.f("\tfsd  f2, 0(t1)")
	g.f("\tfadd f24, f24, f2")
	g.f("\taddi t1, t1, 64")
	g.f("\taddi t2, t2, 8")
	g.f("\taddi s5, s5, -1")
	g.f("\tbnez s5, prolong")
	g.f("\taddi s1, s1, -1")
	g.f("\tbnez s1, vcycle")
	g.checkFP("f24")
	g.exit()
	return g.String()
}

func fmtLbl(p string, i int) string { return p + string(rune('a'+i)) }

// relax3d emits a 7-point relaxation over the interior of an n^3 grid.
func (g *gen) relax3d(prefix, base string, n int) {
	g.f("\t# relax %s", base)
	g.f("\tla   s2, %s", base)
	g.f("\tli   s5, %d", n*n+n+1)       // first interior linear index
	g.f("\tli   s6, %d", n*n*(n-1)-n-1) // last interior linear index
	g.f("%s_loop:", prefix)
	g.f("\tslli t0, s5, 3")
	g.f("\tadd  t1, s2, t0")
	g.f("\tfld  f1, -8(t1)")
	g.f("\tfld  f2, 8(t1)")
	g.f("\tfld  f3, %d(t1)", -n*8)
	g.f("\tfld  f4, %d(t1)", n*8)
	g.f("\tfld  f5, %d(t1)", -n*n*8)
	g.f("\tfld  f6, %d(t1)", n*n*8)
	g.f("\tfadd f1, f1, f2")
	g.f("\tfadd f3, f3, f4")
	g.f("\tfadd f5, f5, f6")
	g.f("\tfadd f1, f1, f3")
	g.f("\tfadd f1, f1, f5")
	g.f("\tfmul f1, f1, f10")
	g.f("\tfsd  f1, 0(t1)")
	g.f("\taddi s5, s5, 1")
	g.f("\tblt  s5, s6, %s_loop", prefix)
}

// appluSource: block 4x4 forward solves with a divide per row.
func appluSource(scale float64) string {
	const blocksN = 256
	g := &gen{}
	g.f(".data")
	g.f(".align 8")
	g.f("lmat:\t.space %d", 16*8) // shared 4x4 L (unit-ish lower)
	g.f("diag:\t.double 1.5, 2.5, 1.25, 3.5")
	g.f("rhs:\t.space %d", blocksN*4*8)
	g.f(".text")
	g.f("main:")
	g.fpFill("lmat", 16, 41)
	g.fpFill("rhs", blocksN*4, 43)
	g.f("\tla   s2, lmat")
	g.f("\tla   s3, rhs")
	g.f("\tla   t0, diag")
	g.f("\tfld  f10, 0(t0)")
	g.f("\tfld  f11, 8(t0)")
	g.f("\tfld  f12, 16(t0)")
	g.f("\tfld  f13, 24(t0)")
	g.f("\tli   s1, %d", iters(190, scale))
	g.f("sweep:")
	g.f("\tli   s5, 0") // block
	g.f("blk:")
	g.f("\tslli t0, s5, 5") // block*4*8
	g.f("\tadd  t1, s3, t0")
	// x0 = b0 / d0
	g.f("\tfld  f1, 0(t1)")
	g.f("\tfdiv f1, f1, f10")
	g.f("\tfsd  f1, 0(t1)")
	// x1 = (b1 - l10*x0) / d1
	g.f("\tfld  f2, 8(t1)")
	g.f("\tfld  f20, 32(s2)")
	g.f("\tfmul f3, f20, f1")
	g.f("\tfsub f2, f2, f3")
	g.f("\tfdiv f2, f2, f11")
	g.f("\tfsd  f2, 8(t1)")
	// x2 = (b2 - l20*x0 - l21*x1) / d2
	g.f("\tfld  f3, 16(t1)")
	g.f("\tfld  f20, 64(s2)")
	g.f("\tfmul f4, f20, f1")
	g.f("\tfsub f3, f3, f4")
	g.f("\tfld  f20, 72(s2)")
	g.f("\tfmul f4, f20, f2")
	g.f("\tfsub f3, f3, f4")
	g.f("\tfdiv f3, f3, f12")
	g.f("\tfsd  f3, 16(t1)")
	// x3 = (b3 - l30*x0 - l31*x1 - l32*x2) / d3
	g.f("\tfld  f4, 24(t1)")
	g.f("\tfld  f20, 96(s2)")
	g.f("\tfmul f5, f20, f1")
	g.f("\tfsub f4, f4, f5")
	g.f("\tfld  f20, 104(s2)")
	g.f("\tfmul f5, f20, f2")
	g.f("\tfsub f4, f4, f5")
	g.f("\tfld  f20, 112(s2)")
	g.f("\tfmul f5, f20, f3")
	g.f("\tfsub f4, f4, f5")
	g.f("\tfdiv f4, f4, f13")
	g.f("\tfsd  f4, 24(t1)")
	g.f("\tfadd f25, f25, f4")
	g.f("\taddi s5, s5, 1")
	g.f("\tli   t2, %d", blocksN)
	g.f("\tblt  s5, t2, blk")
	g.f("\taddi s1, s1, -1")
	g.f("\tbnez s1, sweep")
	g.checkFP("f25")
	g.exit()
	return g.String()
}

// turb3dSource: radix-2 FFT butterfly stages over 256-point rows.
func turb3dSource(scale float64) string {
	const n = 256
	g := &gen{}
	g.f(".data")
	g.f(".align 8")
	g.f("re:\t.space %d", n*8)
	g.f("im:\t.space %d", n*8)
	g.f("tw:\t.double 0.7071, -0.7071, 0.9238, -0.3826, 0.3826, -0.9238, 1.0, 0.0")
	g.f(".text")
	g.f("main:")
	g.fpFill("re", n, 47)
	g.fpFill("im", n, 53)
	g.f("\tla   s2, re")
	g.f("\tla   s3, im")
	g.f("\tla   s6, tw")
	g.f("\tli   s1, %d", iters(75, scale))
	g.f("fft:")
	// 8 butterfly stages, stride doubling each stage.
	g.f("\tli   s4, 1") // half-stride
	g.f("stage:")
	g.f("\tli   s5, 0") // pair index
	g.f("bfly:")
	// partner indices: i and i+half, where i skips blocks of 2*half
	g.f("\tslli t0, s5, 1") // crude pairing: i = 2*s5 & (n-1), j = i ^ half
	g.f("\tandi t0, t0, %d", n-1)
	g.f("\txor  t1, t0, s4")
	g.f("\tslli t2, t0, 3")
	g.f("\tslli t3, t1, 3")
	// twiddle selected by stage parity
	g.f("\tandi t4, s4, 7")
	g.f("\tslli t4, t4, 3")
	g.f("\tadd  t4, s6, t4")
	g.f("\tfld  f10, 0(t4)")
	g.f("\tadd  t5, s2, t2")
	g.f("\tadd  t6, s2, t3")
	g.f("\tadd  t7, s3, t2")
	g.f("\tadd  t8, s3, t3")
	g.f("\tfld  f1, 0(t5)") // re[i]
	g.f("\tfld  f2, 0(t6)") // re[j]
	g.f("\tfld  f3, 0(t7)") // im[i]
	g.f("\tfld  f4, 0(t8)") // im[j]
	// t = w * (x[j]); butterflies: x[i] += t; x[j] = x[i] - 2t (normalized)
	g.f("\tfmul f5, f2, f10")
	g.f("\tfmul f6, f4, f10")
	g.f("\tfadd f7, f1, f5")
	g.f("\tfsub f8, f1, f5")
	g.f("\tfadd f9, f3, f6")
	g.f("\tfsub f11, f3, f6")
	// scale by 0.5 to keep magnitudes bounded across stages
	g.f("\tfld  f12, 48(s6)") // 1.0
	g.f("\tfmul f7, f7, f10")
	g.f("\tfmul f8, f8, f10")
	g.f("\tfmul f9, f9, f12")
	g.f("\tfmul f11, f11, f12")
	g.f("\tfsd  f7, 0(t5)")
	g.f("\tfsd  f8, 0(t6)")
	g.f("\tfsd  f9, 0(t7)")
	g.f("\tfsd  f11, 0(t8)")
	g.f("\taddi s5, s5, 1")
	g.f("\tli   t9, %d", n/2)
	g.f("\tblt  s5, t9, bfly")
	g.f("\tslli s4, s4, 1")
	g.f("\tli   t9, %d", n)
	g.f("\tblt  s4, t9, stage")
	g.f("\tfld  f26, 0(s2)")
	g.f("\tfadd f27, f27, f26")
	g.f("\taddi s1, s1, -1")
	g.f("\tbnez s1, fft")
	g.checkFP("f27")
	g.exit()
	return g.String()
}

// apsiSource: Thomas tridiagonal solves plus an advection stencil.
func apsiSource(scale float64) string {
	const n = 128
	g := &gen{}
	g.f(".data")
	g.f(".align 8")
	g.f("ad:\t.space %d", n*8) // diagonal
	g.f("ab:\t.space %d", n*8) // rhs
	g.f("ac:\t.space %d", n*8) // scratch c'
	g.f("field:\t.space %d", 2048*8)
	g.f("apc:\t.double 2.5, 0.3, 0.05")
	g.f(".text")
	g.f("main:")
	g.fpFill("ab", n, 59)
	g.fpFill("field", 2048, 61)
	g.f("\tla   t0, apc")
	g.f("\tfld  f10, 0(t0)")  // diagonal base 2.5
	g.f("\tfld  f11, 8(t0)")  // off-diagonal 0.3
	g.f("\tfld  f12, 16(t0)") // advection coef
	g.f("\tla   s2, ad")
	g.f("\tla   s3, ab")
	g.f("\tla   s4, ac")
	g.f("\tla   s6, field")
	g.f("\tli   s1, %d", iters(120, scale))
	g.f("solve:")
	// forward sweep: c'[i] = c / (b - a*c'[i-1]); d'[i] = ...
	g.f("\tfsub f1, f1, f1") // prev c' = 0
	g.f("\tfsub f2, f2, f2") // prev d' = 0
	g.f("\tli   s5, 0")
	g.f("fwd:")
	g.f("\tfmul f3, f11, f1")
	g.f("\tfsub f4, f10, f3") // denom
	g.f("\tfdiv f1, f11, f4") // new c'
	g.f("\tslli t0, s5, 3")
	g.f("\tadd  t1, s3, t0")
	g.f("\tfld  f5, 0(t1)")
	g.f("\tfmul f6, f11, f2")
	g.f("\tfsub f5, f5, f6")
	g.f("\tfdiv f2, f5, f4") // new d'
	g.f("\tadd  t2, s4, t0")
	g.f("\tfsd  f1, 0(t2)")
	g.f("\tadd  t3, s2, t0")
	g.f("\tfsd  f2, 0(t3)")
	g.f("\taddi s5, s5, 1")
	g.f("\tli   t4, %d", n)
	g.f("\tblt  s5, t4, fwd")
	// back substitution
	g.f("\tfsub f7, f7, f7") // x[n] = 0
	g.f("\tli   s5, %d", n-1)
	g.f("bsub:")
	g.f("\tslli t0, s5, 3")
	g.f("\tadd  t1, s2, t0") // d'
	g.f("\tadd  t2, s4, t0") // c'
	g.f("\tfld  f5, 0(t1)")
	g.f("\tfld  f6, 0(t2)")
	g.f("\tfmul f8, f6, f7")
	g.f("\tfsub f7, f5, f8") // x[i]
	g.f("\tadd  t3, s3, t0")
	g.f("\tfsd  f7, 0(t3)") // write back into rhs for next round
	g.f("\taddi s5, s5, -1")
	g.f("\tbge  s5, zero, bsub")
	// advection stencil over the field
	g.f("\tli   s5, %d", 2046)
	g.f("adv:")
	g.f("\tslli t0, s5, 3")
	g.f("\tadd  t1, s6, t0")
	g.f("\tfld  f1, 0(t1)")
	g.f("\tfld  f2, 8(t1)")
	g.f("\tfsub f3, f2, f1")
	g.f("\tfmul f3, f3, f12")
	g.f("\tfadd f1, f1, f3")
	g.f("\tfsd  f1, 0(t1)")
	g.f("\tfadd f28, f28, f3")
	g.f("\taddi s5, s5, -1")
	g.f("\tbnez s5, adv")
	g.f("\taddi s1, s1, -1")
	g.f("\tbnez s1, solve")
	g.checkFP("f28")
	g.checkFP("f7")
	g.exit()
	return g.String()
}

// fppppSource: a few enormous straight-line FP blocks — fpppp is famous
// for basic blocks hundreds of instructions long.
func fppppSource(scale float64) string {
	const blockLen = 300
	g := &gen{}
	r := rng(145)
	g.f(".data")
	g.f(".align 8")
	g.f("fsrc:\t.space %d", 64*8) // read-only operand pool
	g.f("fbuf:\t.space %d", 64*8) // written results
	g.f("ftiny:\t.double 0.001")
	g.f(".text")
	g.f("main:")
	g.fpFill("fsrc", 64, 67)
	g.f("\tla   s2, fsrc")
	g.f("\tla   s3, fbuf")
	g.f("\tli   s1, %d", iters(260, scale))
	g.f("big:")
	// Reset the working registers from the pristine pool every iteration so
	// values stay finite, then perturb by the iteration counter.
	for k := 1; k <= 26; k++ {
		g.f("\tfld  f%d, %d(s2)", k, 8*(k-1))
	}
	g.f("\tla   t0, ftiny")
	g.f("\tfld  f27, 0(t0)")
	g.f("\tcvtif f28, s1")
	g.f("\tfmul f28, f28, f27")
	g.f("\tfadd f1, f1, f28")
	for b := 0; b < 4; b++ {
		g.f("\t# giant block %d", b)
		for k := 0; k < blockLen; k++ {
			d := 1 + r.Intn(26)
			a := 1 + r.Intn(26)
			c := 1 + r.Intn(26)
			switch r.Intn(6) {
			case 0, 1:
				g.f("\tfadd f%d, f%d, f%d", d, a, c)
			case 2:
				g.f("\tfsub f%d, f%d, f%d", d, a, c)
			case 3:
				g.f("\tfmul f%d, f%d, f%d", d, a, c)
			case 4:
				g.f("\tfld  f%d, %d(s2)", d, 8*r.Intn(64))
			case 5:
				g.f("\tfsd  f%d, %d(s3)", d, 8*r.Intn(64))
			}
		}
	}
	g.f("\taddi s1, s1, -1")
	g.f("\tbnez s1, big")
	g.f("\tfadd f29, f1, f2")
	g.checkFP("f29")
	g.checkRange("fbuf", 64*8, 64)
	g.exit()
	return g.String()
}

// wave5Source: particle-in-cell gather/scatter with data-dependent
// indices derived from particle positions.
func wave5Source(scale float64) string {
	const particles, cells = 2048, 256
	g := &gen{}
	g.f(".data")
	g.f(".align 8")
	g.f("px:\t.space %d", particles*8)
	g.f("pv:\t.space %d", particles*8)
	g.f("fld:\t.space %d", cells*8)
	g.f("wc:\t.double 0.01, 256.0, 0.001")
	g.f(".text")
	g.f("main:")
	g.fpFill("px", particles, 71)
	g.fpFill("pv", particles, 73)
	g.fpFill("fld", cells, 79)
	// Spread particle positions over [0, 256): x = (x+1)*128.
	g.f("\tla   t0, px")
	g.f("\tli   t1, %d", particles)
	g.f("\tla   t2, wc")
	g.f("\tfld  f10, 8(t2)") // 256.0
	g.f("winit:")
	g.f("\tfld  f1, 0(t0)")
	g.f("\tfabs f1, f1")
	g.f("\tfmul f1, f1, f10")
	g.f("\tfsd  f1, 0(t0)")
	g.f("\taddi t0, t0, 8")
	g.f("\taddi t1, t1, -1")
	g.f("\tbnez t1, winit")

	g.f("\tla   s2, px")
	g.f("\tla   s3, pv")
	g.f("\tla   s4, fld")
	g.f("\tla   t2, wc")
	g.f("\tfld  f11, 0(t2)")  // dt
	g.f("\tfld  f12, 16(t2)") // scatter weight
	g.f("\tli   s1, %d", iters(28, scale))
	g.f("step:")
	g.f("\tli   s5, 0")
	g.f("part:")
	g.f("\tslli t0, s5, 3")
	g.f("\tadd  t1, s2, t0") // &x
	g.f("\tadd  t3, s3, t0") // &v
	g.f("\tfld  f1, 0(t1)")
	g.f("\tfld  f2, 0(t3)")
	// cell index = int(x) & 255 — data-dependent gather
	g.f("\tcvtfi t4, f1")
	g.f("\tandi t4, t4, %d", cells-1)
	g.f("\tslli t4, t4, 3")
	g.f("\tadd  t4, s4, t4")
	g.f("\tfld  f3, 0(t4)") // field at the particle
	// v += dt * field; x += dt*v (wrapped into [0,256) via index mask only)
	g.f("\tfmul f4, f3, f11")
	g.f("\tfadd f2, f2, f4")
	g.f("\tfmul f5, f2, f11")
	g.f("\tfadd f1, f1, f5")
	g.f("\tfabs f1, f1")
	g.f("\tfsd  f1, 0(t1)")
	g.f("\tfsd  f2, 0(t3)")
	// scatter: field[idx] += w * v
	g.f("\tfmul f6, f2, f12")
	g.f("\tfadd f3, f3, f6")
	g.f("\tfsd  f3, 0(t4)")
	g.f("\taddi s5, s5, 1")
	g.f("\tli   t5, %d", particles)
	g.f("\tblt  s5, t5, part")
	g.f("\taddi s1, s1, -1")
	g.f("\tbnez s1, step")
	g.f("\tfld  f1, 0(s4)")
	g.checkFP("f1")
	g.exit()
	return g.String()
}
