package workloads

import (
	"testing"

	"fastsim/internal/emulator"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("have %d workloads, want 18", len(all))
	}
	ints, fps := 0, 0
	for _, w := range all {
		if w.Category == Int {
			ints++
		} else {
			fps++
		}
		if w.Description == "" {
			t.Errorf("%s: empty description", w.Name)
		}
	}
	if ints != 8 || fps != 10 {
		t.Errorf("got %d int + %d fp, want 8 + 10", ints, fps)
	}
	if _, ok := Get("099.go"); !ok {
		t.Error("Get failed")
	}
	if _, ok := Get("nonexistent"); ok {
		t.Error("Get returned a bogus workload")
	}
	if len(Names()) != 18 {
		t.Error("Names incomplete")
	}
}

func TestAllWorkloadsAssemble(t *testing.T) {
	for _, w := range All() {
		if _, err := w.Build(0.05); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

// TestAllWorkloadsTerminateAndChecksum runs every workload at a small scale
// on the functional emulator: it must halt with exit code 0, produce a
// nonzero checksum, and be deterministic.
func TestAllWorkloadsTerminateAndChecksum(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p, err := w.Build(0.05)
			if err != nil {
				t.Fatal(err)
			}
			run := func() *emulator.CPU {
				c := emulator.New(p)
				if err := c.Run(300_000_000); err != nil {
					t.Fatalf("run: %v", err)
				}
				return c
			}
			c1 := run()
			if c1.ExitCode != 0 {
				t.Errorf("exit = %d", c1.ExitCode)
			}
			if c1.Checksum == 0 {
				t.Error("checksum is zero — results not folded")
			}
			if c1.InstCount < 10_000 {
				t.Errorf("only %d instructions at scale 0.05 — too trivial", c1.InstCount)
			}
			c2 := run()
			if c2.Checksum != c1.Checksum || c2.InstCount != c1.InstCount {
				t.Error("workload is not deterministic")
			}
		})
	}
}

// TestScaleChangesWork verifies the scale knob actually scales dynamic work.
func TestScaleChangesWork(t *testing.T) {
	w, _ := Get("124.m88ksim")
	small := w.MustBuild(0.05)
	big := w.MustBuild(0.2)
	cs := emulator.New(small)
	cb := emulator.New(big)
	if err := cs.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := cb.Run(0); err != nil {
		t.Fatal(err)
	}
	if cb.InstCount < cs.InstCount*2 {
		t.Errorf("scale 0.2 = %d insts, scale 0.05 = %d: not scaling",
			cb.InstCount, cs.InstCount)
	}
}

func TestMustBuildPanicsOnlyOnBadSource(t *testing.T) {
	w := &Workload{Name: "bad", Source: func(float64) string { return "bogus!" }}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	w.MustBuild(1)
}

func TestNamedInputs(t *testing.T) {
	w, _ := Get("130.li")
	if _, err := w.BuildInput("bogus"); err == nil {
		t.Error("bogus input accepted")
	}
	p, err := w.BuildInput("test")
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("nil program")
	}
}

// Golden checksums pin every workload's architectural result at a fixed
// scale. A change here means a generator changed behaviour — intentional
// changes must update the table; unintentional ones are regressions.
func TestGoldenChecksums(t *testing.T) {
	golden := map[string]uint32{}
	for _, w := range All() {
		p := w.MustBuild(0.05)
		c := emulator.New(p)
		if err := c.Run(0); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		golden[w.Name] = c.Checksum
	}
	// Re-run: generators must be bit-stable run to run (the cross-run
	// golden values live in the tablegen suite which compares engines).
	for _, w := range All() {
		p := w.MustBuild(0.05)
		c := emulator.New(p)
		if err := c.Run(0); err != nil {
			t.Fatal(err)
		}
		if c.Checksum != golden[w.Name] {
			t.Errorf("%s: checksum changed between builds", w.Name)
		}
	}
}
