package workloads

import (
	"fmt"
	"math/rand"
	"strings"
)

// gen builds assembly source.
type gen struct {
	strings.Builder
	label int
}

func (g *gen) f(format string, a ...interface{}) {
	fmt.Fprintf(g, format+"\n", a...)
}

func (g *gen) newLabel(prefix string) string {
	g.label++
	return fmt.Sprintf("%s_%d", prefix, g.label)
}

// lcgInit emits an LCG-fill loop writing n pseudo-random words at base
// (label), seeding from seed. Clobbers t0-t3.
func (g *gen) lcgFill(base string, words, seed int) {
	loop := g.newLabel("fill")
	g.f("\tla   t0, %s", base)
	g.f("\tli   t1, %d", seed|1)
	g.f("\tli   t2, %d", words)
	g.f("%s:", loop)
	g.f("\tli   t3, 1103515245")
	g.f("\tmul  t1, t1, t3")
	g.f("\taddi t1, t1, 4321")
	g.f("\tsw   t1, 0(t0)")
	g.f("\taddi t0, t0, 4")
	g.f("\taddi t2, t2, -1")
	g.f("\tbnez t2, %s", loop)
}

// checkReg folds a register into the program checksum (clobbers a0).
func (g *gen) checkReg(reg string) {
	g.f("\tmv   a0, %s", reg)
	g.f("\tsys  2")
}

// checkRange folds every step-th word of a buffer into the checksum.
// Clobbers t0-t2 and a0.
func (g *gen) checkRange(base string, bytes, step int) {
	loop := g.newLabel("ck")
	g.f("\tla   t0, %s", base)
	g.f("\tli   t1, %d", bytes)
	g.f("%s:", loop)
	g.f("\tlw   a0, 0(t0)")
	g.f("\tsys  2")
	g.f("\taddi t0, t0, %d", step)
	g.f("\tli   t2, %d", step)
	g.f("\tsub  t1, t1, t2")
	g.f("\tbnez t1, %s", loop)
}

// exit emits the standard exit sequence.
func (g *gen) exit() {
	g.f("\tli   a0, 0")
	g.f("\thalt")
}

// rng returns a deterministic random source for generated code shapes.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// tReg returns a random t register name.
func tReg(r *rand.Rand) string { return fmt.Sprintf("t%d", r.Intn(10)) }
