// Package workloads provides the 18 synthetic SPEC95-named benchmarks used
// to reproduce the paper's evaluation (Tables 2-5, Figure 7). SPEC95 inputs
// and binaries are licensed artifacts this environment does not have, so
// each workload is a generated SV8 program engineered to match the paper's
// per-benchmark *memoization character* — the properties that drive every
// result in the evaluation:
//
//   - dynamic code footprint and control irregularity (which determine
//     p-action cache size: huge and branchy for go/gcc, tiny and regular
//     for mgrid/applu);
//   - branch predictability (which determines rollback activity and the
//     spread of outcome edges);
//   - data footprint (which determines cache-simulator call patterns);
//   - integer vs floating-point mix (which determines actions/cycle).
//
// Every workload self-checks: it folds its results into the program
// checksum (sys 2) so that all engines can be verified against functional
// emulation.
package workloads

import (
	"fmt"
	"sort"

	"fastsim/internal/asm"
	"fastsim/internal/program"
)

// Category separates the integer and floating-point suites.
type Category uint8

const (
	Int Category = iota
	FP
)

func (c Category) String() string {
	if c == FP {
		return "fp"
	}
	return "int"
}

// Workload is one synthetic benchmark.
type Workload struct {
	Name        string
	Category    Category
	Description string

	// Source generates the assembly for a given scale. Scale 1.0 is the
	// default table-run size (roughly a million dynamic instructions);
	// iteration counts scale linearly.
	Source func(scale float64) string
}

// Input names the paper's SPEC input sets as scale factors: the paper ran
// "test" inputs (and "train" for compress); larger named inputs are longer
// runs of the same program.
var Input = map[string]float64{
	"test":  1,
	"train": 4,
	"ref":   16,
}

// BuildInput assembles the workload at a named input size.
func (w *Workload) BuildInput(input string) (*program.Program, error) {
	s, ok := Input[input]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown input %q (want test, train or ref)", input)
	}
	return w.Build(s)
}

// Build assembles the workload at the given scale.
func (w *Workload) Build(scale float64) (*program.Program, error) {
	if scale <= 0 {
		scale = 1
	}
	return asm.Assemble(w.Name+".s", w.Source(scale))
}

// MustBuild panics on assembly failure (generator bugs only).
func (w *Workload) MustBuild(scale float64) *program.Program {
	p, err := w.Build(scale)
	if err != nil {
		panic(fmt.Sprintf("workloads: %s: %v", w.Name, err))
	}
	return p
}

var registry = map[string]*Workload{}

func register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("workloads: duplicate " + w.Name)
	}
	registry[w.Name] = w
}

// Get returns a workload by name (e.g. "099.go").
func Get(name string) (*Workload, bool) {
	w, ok := registry[name]
	return w, ok
}

// All returns every workload in the paper's Table 2 order: the eight
// integer benchmarks, then the ten floating-point benchmarks.
func All() []*Workload {
	order := []string{
		"099.go", "124.m88ksim", "126.gcc", "129.compress",
		"130.li", "132.ijpeg", "134.perl", "147.vortex",
		"101.tomcatv", "102.swim", "103.su2cor", "104.hydro2d",
		"107.mgrid", "110.applu", "125.turb3d", "141.apsi",
		"145.fpppp", "146.wave5",
	}
	out := make([]*Workload, 0, len(order))
	for _, n := range order {
		w, ok := registry[n]
		if !ok {
			panic("workloads: missing " + n)
		}
		out = append(out, w)
	}
	return out
}

// Names returns all workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func iters(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}
