package emulator

import (
	"math"
	"testing"

	"fastsim/internal/asm"
	"fastsim/internal/isa"
	"fastsim/internal/program"
)

func run(t *testing.T, src string) *CPU {
	t.Helper()
	p, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	if err := c.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestArithmetic(t *testing.T) {
	c := run(t, `
main:
	li   t0, 100
	li   t1, 7
	add  t2, t0, t1     # 107
	sub  t3, t0, t1     # 93
	mul  t4, t0, t1     # 700
	div  t5, t0, t1     # 14
	rem  t6, t0, t1     # 2
	halt
`)
	want := map[int]uint32{14: 107, 15: 93, 16: 700, 17: 14, 18: 2}
	for r, v := range want {
		if c.R[r] != v {
			t.Errorf("r%d = %d, want %d", r, c.R[r], v)
		}
	}
}

func TestSignedOps(t *testing.T) {
	c := run(t, `
main:
	li   t0, -20
	li   t1, 7
	div  t2, t0, t1      # -2
	rem  t3, t0, t1      # -6
	sra  t4, t0, t1      # -1 (arith shift of -20 by 7)
	srl  t5, t0, t1      # big positive
	slt  t6, t0, t1      # 1
	sltu t7, t0, t1      # 0 (as unsigned -20 is huge)
	halt
`)
	if int32(c.R[14]) != -2 {
		t.Errorf("div = %d", int32(c.R[14]))
	}
	if int32(c.R[15]) != -6 {
		t.Errorf("rem = %d", int32(c.R[15]))
	}
	if int32(c.R[16]) != -1 {
		t.Errorf("sra = %d", int32(c.R[16]))
	}
	if c.R[17] != uint32(0xFFFFFFEC)>>7 {
		t.Errorf("srl = %#x", c.R[17])
	}
	if c.R[18] != 1 || c.R[19] != 0 {
		t.Errorf("slt/sltu = %d/%d", c.R[18], c.R[19])
	}
}

func TestDivByZeroSemantics(t *testing.T) {
	c := run(t, `
main:
	li  t0, 42
	li  t1, 0
	div t2, t0, t1
	rem t3, t0, t1
	halt
`)
	if c.R[14] != 0xFFFFFFFF {
		t.Errorf("div/0 = %#x", c.R[14])
	}
	if c.R[15] != 42 {
		t.Errorf("rem/0 = %d", c.R[15])
	}
}

func TestDivOverflow(t *testing.T) {
	c := run(t, `
main:
	li  t0, -0x80000000
	li  t1, -1
	div t2, t0, t1
	rem t3, t0, t1
	halt
`)
	if c.R[14] != 0x80000000 || c.R[15] != 0 {
		t.Errorf("overflow div/rem = %#x/%#x", c.R[14], c.R[15])
	}
}

func TestMulh(t *testing.T) {
	c := run(t, `
main:
	li   t0, 0x10000
	li   t1, 0x10000
	mulh t2, t0, t1     # (2^16 * 2^16) >> 32 = 1
	li   t3, -1
	mulh t4, t3, t3     # (-1 * -1) >> 32 = 0
	halt
`)
	if c.R[14] != 1 || c.R[16] != 0 {
		t.Errorf("mulh = %d/%d", c.R[14], c.R[16])
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	c := run(t, `
main:
	addi zero, zero, 5
	li   t0, 9
	add  zero, t0, t0
	mv   t1, zero
	halt
`)
	if c.R[0] != 0 || c.R[13] != 0 {
		t.Errorf("zero = %d, t1 = %d", c.R[0], c.R[13])
	}
}

func TestMemoryOps(t *testing.T) {
	c := run(t, `
.data
buf:	.space 64
.text
main:
	la   s0, buf
	li   t0, -2          # 0xFFFFFFFE
	sw   t0, 0(s0)
	lw   t1, 0(s0)
	lh   t2, 0(s0)       # sign-extended 0xFFFE = -2
	lhu  t3, 0(s0)       # 0xFFFE
	lb   t4, 0(s0)       # -2
	lbu  t5, 0(s0)       # 0xFE
	sh   t0, 8(s0)
	lhu  t6, 8(s0)
	sb   t0, 12(s0)
	lbu  t7, 12(s0)
	halt
`)
	if c.R[13] != 0xFFFFFFFE {
		t.Errorf("lw = %#x", c.R[13])
	}
	if int32(c.R[14]) != -2 || c.R[15] != 0xFFFE {
		t.Errorf("lh/lhu = %#x/%#x", c.R[14], c.R[15])
	}
	if int32(c.R[16]) != -2 || c.R[17] != 0xFE {
		t.Errorf("lb/lbu = %#x/%#x", c.R[16], c.R[17])
	}
	if c.R[18] != 0xFFFE || c.R[19] != 0xFE {
		t.Errorf("sh/sb = %#x/%#x", c.R[18], c.R[19])
	}
}

func TestFloatingPoint(t *testing.T) {
	c := run(t, `
.data
vals:	.double 2.25, -3.5
.text
main:
	la   s0, vals
	fld  f1, 0(s0)
	fld  f2, 8(s0)
	fadd f3, f1, f2      # -1.25
	fmul f4, f1, f2      # -7.875
	fdiv f5, f2, f1
	fsqrt f6, f1         # 1.5
	fabs f7, f2          # 3.5
	fneg f8, f1          # -2.25
	fmin f9, f1, f2      # -3.5
	fmax f10, f1, f2     # 2.25
	flt  t0, f2, f1      # 1
	fle  t1, f1, f1      # 1
	feq  t2, f1, f2      # 0
	cvtfi t3, f2         # -3
	li   t4, -7
	cvtif f11, t4
	fsd  f3, 16(s0)
	fld  f12, 16(s0)
	halt
`)
	fwant := map[int]float64{3: -1.25, 4: -7.875, 5: -3.5 / 2.25, 6: 1.5,
		7: 3.5, 8: -2.25, 9: -3.5, 10: 2.25, 11: -7, 12: -1.25}
	for r, v := range fwant {
		if c.F[r] != v {
			t.Errorf("f%d = %v, want %v", r, c.F[r], v)
		}
	}
	if c.R[12] != 1 || c.R[13] != 1 || c.R[14] != 0 {
		t.Errorf("fp compares = %d/%d/%d", c.R[12], c.R[13], c.R[14])
	}
	if int32(c.R[15]) != -3 {
		t.Errorf("cvtfi = %d", int32(c.R[15]))
	}
}

func TestCvtfiEdgeCases(t *testing.T) {
	if truncToI32(math.NaN()) != 0 {
		t.Error("NaN")
	}
	if truncToI32(1e30) != math.MaxInt32 {
		t.Error("+inf clamp")
	}
	if truncToI32(-1e30) != 0x80000000 {
		t.Error("-inf clamp")
	}
	if int32(truncToI32(-2.9)) != -2 {
		t.Error("trunc toward zero")
	}
}

func TestControlFlow(t *testing.T) {
	c := run(t, `
main:
	li   t0, 5
	li   t1, 0
loop:
	add  t1, t1, t0
	addi t0, t0, -1
	bnez t0, loop
	call fn
	halt
fn:
	addi t1, t1, 100
	ret
`)
	if c.R[13] != 15+100 {
		t.Errorf("sum = %d", c.R[13])
	}
}

func TestIndirectJump(t *testing.T) {
	c := run(t, `
.data
table:	.word case0, case1, case2
.text
main:
	li   t0, 1           # select case1
	la   t1, table
	slli t2, t0, 2
	add  t1, t1, t2
	lw   t3, 0(t1)
	jr   t3
case0:	li a0, 100
	halt
case1:	li a0, 200
	halt
case2:	li a0, 300
	halt
`)
	if c.ExitCode != 200 {
		t.Errorf("exit = %d", c.ExitCode)
	}
}

func TestSyscalls(t *testing.T) {
	c := run(t, `
main:
	li a0, 'H'
	sys 1
	li a0, 'i'
	sys 1
	li a0, 0xABCD
	sys 2
	li a0, 7
	sys 0
`)
	if string(c.Output) != "Hi" {
		t.Errorf("output = %q", c.Output)
	}
	if c.Checksum != FoldCheck(0, 0xABCD) {
		t.Errorf("checksum = %#x", c.Checksum)
	}
	if !c.Exited || c.ExitCode != 7 {
		t.Errorf("exit = %v/%d", c.Exited, c.ExitCode)
	}
}

func TestRunBudget(t *testing.T) {
	p, err := asm.Assemble("t.s", "main: j main\n")
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	if err := c.Run(100); err != ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	if c.InstCount != 100 {
		t.Errorf("count = %d", c.InstCount)
	}
}

func TestInvalidPC(t *testing.T) {
	// jr to an address outside text.
	p, err := asm.Assemble("t.s", "main:\n\tli t0, 0x10\n\tjr t0\n")
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	if err := c.Run(100); err == nil {
		t.Error("expected invalid pc error")
	}
}

func TestJalLinkValue(t *testing.T) {
	c := run(t, `
main:
	call fn
after:
	halt
fn:
	mv  t0, ra
	ret
`)
	want, _ := c.Prog.Symbol("after")
	if c.R[12] != want {
		t.Errorf("ra in fn = %#x, want %#x", c.R[12], want)
	}
}

func TestStepInstDeterministicSmoke(t *testing.T) {
	// Every opcode must execute without panicking on arbitrary state.
	p, _ := asm.Assemble("t.s", "main: halt\n")
	for op := isa.Opcode(1); int(op) < isa.NumOpcodes; op++ {
		if !op.Valid() {
			continue
		}
		s := NewState(p)
		s.R[2] = program.StackTop
		i := isa.Inst{Op: op, Rd: 5, Rs1: 6, Rs2: 7, Imm: 0}
		StepInst(s, i, p.Entry)
	}
}

func TestOutputCap(t *testing.T) {
	// A program writing more than MaxOutput bytes must not grow memory
	// without bound.
	p, err := asm.Assemble("t.s", `
main:
	li   t0, 70000
loop:
	li   a0, 'x'
	sys  1
	addi t0, t0, -1
	bnez t0, loop
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(c.Output) != MaxOutput {
		t.Errorf("output = %d bytes, want capped at %d", len(c.Output), MaxOutput)
	}
}
