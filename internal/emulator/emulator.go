// Package emulator implements functional (untimed) execution of SV8
// programs. It serves three roles in the reproduction:
//
//   - It is the semantic reference: StepInst defines the meaning of every
//     instruction, and all other engines (the speculative direct-execution
//     engine and the SimpleScalar-surrogate reference simulator) call the
//     same function, so functional divergence between engines is impossible
//     by construction.
//   - Its wall-clock speed stands in for "native execution of the original,
//     uninstrumented executable" in the paper's Table 2/3 slowdown columns,
//     since nothing in this environment runs SV8 natively.
//   - Tests use it as the oracle for the rollback correctness of
//     speculative direct-execution.
package emulator

import (
	"errors"
	"fmt"
	"math"

	"fastsim/internal/isa"
	"fastsim/internal/program"
)

// MaxOutput caps the bytes retained from SysPutc so runaway programs cannot
// exhaust memory.
const MaxOutput = 64 * 1024

// State is the architectural state of an SV8 program: registers, memory and
// the externally visible side effects (output bytes, checksum, exit).
type State struct {
	R [isa.NumIntRegs]uint32
	F [isa.NumFPRegs]float64

	Mem *program.Memory

	Checksum uint32 // folded by SysCheck
	Output   []byte // bytes written by SysPutc, capped at MaxOutput
	Exited   bool
	ExitCode uint32
}

// NewState returns a State with p loaded and the stack pointer initialized.
func NewState(p *program.Program) *State {
	s := &State{Mem: program.NewMemory()}
	s.R[isa.RegSP] = s.Mem.Load(p)
	return s
}

// FoldCheck folds v into a running checksum. Exposed so tests can compute
// expected checksums.
func FoldCheck(sum, v uint32) uint32 {
	return (sum<<5 | sum>>27) ^ v
}

// StepInst executes one instruction at pc against s and returns the next
// program counter. It is the single definition of SV8 semantics.
func StepInst(s *State, i isa.Inst, pc uint32) uint32 {
	next := pc + isa.WordSize
	switch i.Op {
	case isa.OpAdd:
		s.set(i.Rd, s.R[i.Rs1]+s.R[i.Rs2])
	case isa.OpSub:
		s.set(i.Rd, s.R[i.Rs1]-s.R[i.Rs2])
	case isa.OpAnd:
		s.set(i.Rd, s.R[i.Rs1]&s.R[i.Rs2])
	case isa.OpOr:
		s.set(i.Rd, s.R[i.Rs1]|s.R[i.Rs2])
	case isa.OpXor:
		s.set(i.Rd, s.R[i.Rs1]^s.R[i.Rs2])
	case isa.OpSll:
		s.set(i.Rd, s.R[i.Rs1]<<(s.R[i.Rs2]&31))
	case isa.OpSrl:
		s.set(i.Rd, s.R[i.Rs1]>>(s.R[i.Rs2]&31))
	case isa.OpSra:
		s.set(i.Rd, uint32(int32(s.R[i.Rs1])>>(s.R[i.Rs2]&31)))
	case isa.OpSlt:
		s.set(i.Rd, b2u(int32(s.R[i.Rs1]) < int32(s.R[i.Rs2])))
	case isa.OpSltu:
		s.set(i.Rd, b2u(s.R[i.Rs1] < s.R[i.Rs2]))
	case isa.OpMul:
		s.set(i.Rd, s.R[i.Rs1]*s.R[i.Rs2])
	case isa.OpMulh:
		s.set(i.Rd, uint32(int64(int32(s.R[i.Rs1]))*int64(int32(s.R[i.Rs2]))>>32))
	case isa.OpDiv:
		s.set(i.Rd, divS(s.R[i.Rs1], s.R[i.Rs2]))
	case isa.OpRem:
		s.set(i.Rd, remS(s.R[i.Rs1], s.R[i.Rs2]))

	case isa.OpAddi:
		s.set(i.Rd, s.R[i.Rs1]+uint32(i.Imm))
	case isa.OpAndi:
		s.set(i.Rd, s.R[i.Rs1]&uint32(i.Imm))
	case isa.OpOri:
		s.set(i.Rd, s.R[i.Rs1]|uint32(i.Imm))
	case isa.OpXori:
		s.set(i.Rd, s.R[i.Rs1]^uint32(i.Imm))
	case isa.OpSlli:
		s.set(i.Rd, s.R[i.Rs1]<<(uint32(i.Imm)&31))
	case isa.OpSrli:
		s.set(i.Rd, s.R[i.Rs1]>>(uint32(i.Imm)&31))
	case isa.OpSrai:
		s.set(i.Rd, uint32(int32(s.R[i.Rs1])>>(uint32(i.Imm)&31)))
	case isa.OpSlti:
		s.set(i.Rd, b2u(int32(s.R[i.Rs1]) < i.Imm))
	case isa.OpLui:
		s.set(i.Rd, uint32(i.Imm))

	case isa.OpLw:
		s.set(i.Rd, s.Mem.ReadU32(s.R[i.Rs1]+uint32(i.Imm)))
	case isa.OpLh:
		s.set(i.Rd, uint32(int32(int16(s.Mem.ReadU16(s.R[i.Rs1]+uint32(i.Imm))))))
	case isa.OpLhu:
		s.set(i.Rd, uint32(s.Mem.ReadU16(s.R[i.Rs1]+uint32(i.Imm))))
	case isa.OpLb:
		s.set(i.Rd, uint32(int32(int8(s.Mem.ReadU8(s.R[i.Rs1]+uint32(i.Imm))))))
	case isa.OpLbu:
		s.set(i.Rd, uint32(s.Mem.ReadU8(s.R[i.Rs1]+uint32(i.Imm))))
	case isa.OpSw:
		s.Mem.WriteU32(s.R[i.Rs1]+uint32(i.Imm), s.R[i.Rd])
	case isa.OpSh:
		s.Mem.WriteU16(s.R[i.Rs1]+uint32(i.Imm), uint16(s.R[i.Rd]))
	case isa.OpSb:
		s.Mem.WriteU8(s.R[i.Rs1]+uint32(i.Imm), byte(s.R[i.Rd]))
	case isa.OpFld:
		s.F[i.Rd] = math.Float64frombits(s.Mem.ReadU64(s.R[i.Rs1] + uint32(i.Imm)))
	case isa.OpFsd:
		s.Mem.WriteU64(s.R[i.Rs1]+uint32(i.Imm), math.Float64bits(s.F[i.Rd]))

	case isa.OpBeq:
		if s.R[i.Rs1] == s.R[i.Rs2] {
			next = pc + uint32(i.Imm)
		}
	case isa.OpBne:
		if s.R[i.Rs1] != s.R[i.Rs2] {
			next = pc + uint32(i.Imm)
		}
	case isa.OpBlt:
		if int32(s.R[i.Rs1]) < int32(s.R[i.Rs2]) {
			next = pc + uint32(i.Imm)
		}
	case isa.OpBge:
		if int32(s.R[i.Rs1]) >= int32(s.R[i.Rs2]) {
			next = pc + uint32(i.Imm)
		}
	case isa.OpBltu:
		if s.R[i.Rs1] < s.R[i.Rs2] {
			next = pc + uint32(i.Imm)
		}
	case isa.OpBgeu:
		if s.R[i.Rs1] >= s.R[i.Rs2] {
			next = pc + uint32(i.Imm)
		}
	case isa.OpJ:
		next = pc + uint32(i.Imm)
	case isa.OpJal:
		s.set(i.Rd, pc+isa.WordSize)
		next = pc + uint32(i.Imm)
	case isa.OpJalr:
		t := (s.R[i.Rs1] + uint32(i.Imm)) &^ 3
		s.set(i.Rd, pc+isa.WordSize)
		next = t

	case isa.OpFadd:
		s.F[i.Rd] = s.F[i.Rs1] + s.F[i.Rs2]
	case isa.OpFsub:
		s.F[i.Rd] = s.F[i.Rs1] - s.F[i.Rs2]
	case isa.OpFmul:
		s.F[i.Rd] = s.F[i.Rs1] * s.F[i.Rs2]
	case isa.OpFdiv:
		s.F[i.Rd] = s.F[i.Rs1] / s.F[i.Rs2]
	case isa.OpFsqrt:
		s.F[i.Rd] = math.Sqrt(s.F[i.Rs1])
	case isa.OpFmin:
		s.F[i.Rd] = math.Min(s.F[i.Rs1], s.F[i.Rs2])
	case isa.OpFmax:
		s.F[i.Rd] = math.Max(s.F[i.Rs1], s.F[i.Rs2])
	case isa.OpFneg:
		s.F[i.Rd] = -s.F[i.Rs1]
	case isa.OpFabs:
		s.F[i.Rd] = math.Abs(s.F[i.Rs1])
	case isa.OpFmov:
		s.F[i.Rd] = s.F[i.Rs1]
	case isa.OpCvtif:
		s.F[i.Rd] = float64(int32(s.R[i.Rs1]))
	case isa.OpCvtfi:
		s.set(i.Rd, truncToI32(s.F[i.Rs1]))
	case isa.OpFeq:
		//fastsim:float-exact: OpFeq is the ISA's IEEE equality instruction; exact comparison of register bits is the architecture's semantics
		s.set(i.Rd, b2u(s.F[i.Rs1] == s.F[i.Rs2]))
	case isa.OpFlt:
		s.set(i.Rd, b2u(s.F[i.Rs1] < s.F[i.Rs2]))
	case isa.OpFle:
		s.set(i.Rd, b2u(s.F[i.Rs1] <= s.F[i.Rs2]))

	case isa.OpSys:
		switch i.Imm {
		case isa.SysExit:
			s.Exited = true
			s.ExitCode = s.R[isa.RegA0]
		case isa.SysPutc:
			if len(s.Output) < MaxOutput {
				s.Output = append(s.Output, byte(s.R[isa.RegA0]))
			}
		case isa.SysCheck:
			s.Checksum = FoldCheck(s.Checksum, s.R[isa.RegA0])
		}
	case isa.OpHalt:
		s.Exited = true
		s.ExitCode = s.R[isa.RegA0]
	}
	return next
}

func (s *State) set(rd uint8, v uint32) {
	if rd != 0 {
		s.R[rd] = v
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func divS(a, b uint32) uint32 {
	if b == 0 {
		return 0xFFFFFFFF
	}
	if int32(a) == math.MinInt32 && int32(b) == -1 {
		return a // overflow: result is the dividend, as on RISC-V
	}
	return uint32(int32(a) / int32(b))
}

func remS(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	if int32(a) == math.MinInt32 && int32(b) == -1 {
		return 0
	}
	return uint32(int32(a) % int32(b))
}

func truncToI32(f float64) uint32 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt32:
		return math.MaxInt32
	case f <= math.MinInt32:
		return 0x80000000
	}
	return uint32(int32(f))
}

// ErrBudget is returned by Run when the instruction budget is exhausted
// before the program halts.
var ErrBudget = errors.New("emulator: instruction budget exhausted")

// CPU is a plain fetch-decode-execute interpreter over State.
type CPU struct {
	*State
	Prog      *program.Program
	PC        uint32
	InstCount uint64
}

// New returns a CPU ready to run p from its entry point.
func New(p *program.Program) *CPU {
	return &CPU{State: NewState(p), Prog: p, PC: p.Entry}
}

// Step executes a single instruction.
func (c *CPU) Step() error {
	inst, ok := c.Prog.InstAt(c.PC)
	if !ok {
		return fmt.Errorf("emulator: invalid pc %#x after %d instructions", c.PC, c.InstCount)
	}
	c.PC = StepInst(c.State, inst, c.PC)
	c.InstCount++
	return nil
}

// Run executes until the program exits or maxInsts instructions have
// retired (0 means no budget).
func (c *CPU) Run(maxInsts uint64) error {
	for !c.Exited {
		if maxInsts > 0 && c.InstCount >= maxInsts {
			return ErrBudget
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}
