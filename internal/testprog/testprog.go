// Package testprog generates random, terminating SV8 programs with heavy,
// data-dependent control flow. The property-based tests of the speculative
// direct-execution engine, the out-of-order pipeline and the memoization
// layer all use it: a random branchy program is the sharpest tool for
// catching rollback bugs and memoized-vs-detailed divergence.
package testprog

import (
	"fmt"
	"math/rand"
	"strings"

	"fastsim/internal/asm"
	"fastsim/internal/program"
)

// Options tunes the generated program.
type Options struct {
	Segments   int  // body segments inside the main loop (default 16)
	Iterations int  // outer loop trip count (default 100)
	FP         bool // include floating-point work
	Indirect   bool // include indirect-jump dispatch segments
	Calls      bool // include function calls
}

// DefaultOptions returns a configuration exercising every feature.
func DefaultOptions() Options {
	return Options{Segments: 16, Iterations: 100, FP: true, Indirect: true, Calls: true}
}

// Source generates assembly source for a random program. The same seed and
// options always produce the same program.
func Source(seed int64, o Options) string {
	if o.Segments <= 0 {
		o.Segments = 16
	}
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder

	fmt.Fprintf(&b, "# random test program, seed %d\n", seed)
	b.WriteString(".data\n.align 8\nbuf:\t.space 2048\n")
	if o.FP {
		b.WriteString("fbuf:\t.double 1.5, -2.25, 3.0, 0.5, -1.0, 8.25, 0.125, 4.0\n")
	}
	if o.Indirect {
		b.WriteString("jtab:\t.word case0, case1, case2, case3\n")
	}
	b.WriteString(".text\nmain:\n")
	fmt.Fprintf(&b, "\tli s0, %d\n", seed|1)
	fmt.Fprintf(&b, "\tli s1, %d\n", o.Iterations)
	b.WriteString("\tla s2, buf\n")
	b.WriteString("\tli s3, 0\n")
	if o.FP {
		b.WriteString("\tla s4, fbuf\n\tfld f1, 0(s4)\n\tfld f2, 8(s4)\n")
	}
	b.WriteString("loop:\n")

	lbl := 0
	newLabel := func() string { lbl++; return fmt.Sprintf("L%d", lbl) }
	t := func() int { return 12 + r.Intn(10) } // t0..t9

	for seg := 0; seg < o.Segments; seg++ {
		// Mix the LCG state so branch behaviour varies between iterations.
		fmt.Fprintf(&b, "\t# segment %d\n", seg)
		fmt.Fprintf(&b, "\tli t0, %d\n", 1103515245)
		b.WriteString("\tmul s0, s0, t0\n")
		fmt.Fprintf(&b, "\taddi s0, s0, %d\n", 1+r.Intn(4000))

		nOps := 2 + r.Intn(5)
		for k := 0; k < nOps; k++ {
			switch r.Intn(10) {
			case 0, 1, 2:
				ops := []string{"add", "sub", "xor", "and", "or"}
				fmt.Fprintf(&b, "\t%s t%d, t%d, t%d\n", ops[r.Intn(len(ops))], t()-12, t()-12, t()-12)
			case 3:
				fmt.Fprintf(&b, "\tslli t%d, t%d, %d\n", t()-12, t()-12, r.Intn(8))
			case 4:
				fmt.Fprintf(&b, "\tmul t%d, t%d, t%d\n", t()-12, t()-12, t()-12)
			case 5:
				// load from buf
				fmt.Fprintf(&b, "\tandi t%d, s0, 0x1FC\n", t()-12)
			case 6:
				// address-computed load
				reg := t() - 12
				fmt.Fprintf(&b, "\tandi t%d, s0, 0x1FC\n", reg)
				fmt.Fprintf(&b, "\tadd t%d, s2, t%d\n", reg, reg)
				fmt.Fprintf(&b, "\tlw t%d, 0(t%d)\n", t()-12, reg)
			case 7:
				// address-computed store
				reg := t() - 12
				src := t() - 12
				fmt.Fprintf(&b, "\tandi t%d, s0, 0x1FC\n", reg)
				fmt.Fprintf(&b, "\tadd t%d, s2, t%d\n", reg, reg)
				fmt.Fprintf(&b, "\tsw t%d, 0(t%d)\n", src, reg)
			case 8:
				if o.FP {
					fops := []string{"fadd", "fsub", "fmul"}
					fmt.Fprintf(&b, "\t%s f%d, f%d, f%d\n",
						fops[r.Intn(len(fops))], 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6))
				} else {
					fmt.Fprintf(&b, "\tadd s3, s3, t%d\n", t()-12)
				}
			case 9:
				fmt.Fprintf(&b, "\tadd s3, s3, t%d\n", t()-12)
			}
		}

		// A data-dependent forward branch over a small region.
		skip := newLabel()
		conds := []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}
		fmt.Fprintf(&b, "\tandi t0, s0, %d\n", 1+r.Intn(7))
		fmt.Fprintf(&b, "\tandi t1, s1, %d\n", 1+r.Intn(7))
		fmt.Fprintf(&b, "\t%s t0, t1, %s\n", conds[r.Intn(len(conds))], skip)
		for k := 0; k < 1+r.Intn(3); k++ {
			fmt.Fprintf(&b, "\txor s3, s3, t%d\n", t()-12)
			if r.Intn(3) == 0 {
				reg := t() - 12
				fmt.Fprintf(&b, "\tandi t%d, s3, 0x1F8\n", reg)
				fmt.Fprintf(&b, "\tadd t%d, s2, t%d\n", reg, reg)
				fmt.Fprintf(&b, "\tsw s3, 4(t%d)\n", reg)
			}
		}
		fmt.Fprintf(&b, "%s:\n", skip)

		if o.Calls && r.Intn(3) == 0 {
			fmt.Fprintf(&b, "\tcall fn%d\n", r.Intn(3))
		}
		if o.Indirect && r.Intn(4) == 0 {
			out := newLabel()
			b.WriteString("\tandi t2, s0, 3\n")
			b.WriteString("\tslli t2, t2, 2\n")
			b.WriteString("\tla t3, jtab\n")
			b.WriteString("\tadd t3, t3, t2\n")
			b.WriteString("\tlw t4, 0(t3)\n")
			// The four cases converge on a per-segment label via a
			// register so the same jtab works from every segment.
			fmt.Fprintf(&b, "\tla t5, %s\n", out)
			b.WriteString("\tjr t4\n")
			fmt.Fprintf(&b, "%s:\n", out)
		}
	}

	b.WriteString("\taddi s1, s1, -1\n")
	b.WriteString("\tbnez s1, loop\n")

	// Fold visible state into the checksum.
	b.WriteString("\t# checksum\n")
	for k := 0; k < 10; k++ {
		fmt.Fprintf(&b, "\tmv a0, t%d\n\tsys 2\n", k)
	}
	b.WriteString("\tmv a0, s3\n\tsys 2\n")
	if o.FP {
		for k := 1; k <= 6; k++ {
			fmt.Fprintf(&b, "\tcvtfi a0, f%d\n\tsys 2\n", k)
		}
	}
	// Fold a sample of buffer words.
	b.WriteString("\tli t0, 0\n")
	b.WriteString("cksum_loop:\n")
	b.WriteString("\tadd t1, s2, t0\n")
	b.WriteString("\tlw a0, 0(t1)\n")
	b.WriteString("\tsys 2\n")
	b.WriteString("\taddi t0, t0, 64\n")
	b.WriteString("\tli t2, 2048\n")
	b.WriteString("\tblt t0, t2, cksum_loop\n")
	b.WriteString("\tli a0, 0\n\thalt\n")

	if o.Indirect {
		// Dispatch cases: each does distinct work, then jumps to the
		// continuation address in t5.
		for c := 0; c < 4; c++ {
			fmt.Fprintf(&b, "case%d:\n", c)
			fmt.Fprintf(&b, "\taddi s3, s3, %d\n", (c+1)*17)
			b.WriteString("\tjr t5\n")
		}
	}
	if o.Calls {
		b.WriteString(`
fn0:
	add s3, s3, s0
	ret
fn1:
	xor s3, s3, s1
	slli t6, s3, 1
	ret
fn2:
	andi t7, s0, 0xFF
	add s3, s3, t7
	ret
`)
	}
	return b.String()
}

// Build assembles a random program.
func Build(seed int64, o Options) (*program.Program, error) {
	name := fmt.Sprintf("rand-%d.s", seed)
	return asm.Assemble(name, Source(seed, o))
}

// MustBuild is Build, panicking on assembly failure (generator bugs).
func MustBuild(seed int64, o Options) *program.Program {
	p, err := Build(seed, o)
	if err != nil {
		panic(err)
	}
	return p
}
