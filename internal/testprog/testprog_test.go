package testprog

import (
	"testing"

	"fastsim/internal/emulator"
)

func TestDeterministicSource(t *testing.T) {
	a := Source(42, DefaultOptions())
	b := Source(42, DefaultOptions())
	if a != b {
		t.Error("same seed produced different programs")
	}
	c := Source(43, DefaultOptions())
	if a == c {
		t.Error("different seeds produced identical programs")
	}
}

func TestBuildAndTerminate(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p, err := Build(seed, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cpu := emulator.New(p)
		if err := cpu.Run(100_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cpu.ExitCode != 0 {
			t.Errorf("seed %d: exit %d", seed, cpu.ExitCode)
		}
		if cpu.Checksum == 0 {
			t.Errorf("seed %d: zero checksum", seed)
		}
	}
}

func TestOptionsRespected(t *testing.T) {
	// Without FP, no FP instructions may appear.
	o := Options{Segments: 8, Iterations: 10}
	src := Source(5, o)
	for _, frag := range []string{"fadd", "fmul", "fld", "jtab", "call fn"} {
		if contains(src, frag) {
			t.Errorf("disabled feature present: %q", frag)
		}
	}
	o2 := DefaultOptions()
	src2 := Source(5, o2)
	for _, frag := range []string{"fadd", "jtab", "fn0"} {
		if !contains(src2, frag) {
			t.Errorf("enabled feature missing: %q", frag)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestIterationsScaleWork(t *testing.T) {
	small := MustBuild(7, Options{Segments: 6, Iterations: 10})
	big := MustBuild(7, Options{Segments: 6, Iterations: 40})
	cs, cb := emulator.New(small), emulator.New(big)
	if err := cs.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := cb.Run(0); err != nil {
		t.Fatal(err)
	}
	if cb.InstCount < cs.InstCount*2 {
		t.Errorf("iterations not scaling: %d vs %d", cs.InstCount, cb.InstCount)
	}
}
