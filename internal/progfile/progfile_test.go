package progfile

import (
	"bytes"
	"testing"

	"fastsim/internal/asm"
	"fastsim/internal/emulator"
	"fastsim/internal/workloads"
)

func TestRoundTrip(t *testing.T) {
	src := `
.data
msg:	.asciz "hi"
vals:	.word 1, 2, 3
.text
main:
	la  a0, vals
	lw  a0, 4(a0)
	sys 2
	li  a0, 0
	halt
`
	p, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := Read(&buf, "t.fsx")
	if err != nil {
		t.Fatal(err)
	}
	if q.Entry != p.Entry || len(q.Text) != len(p.Text) || len(q.Data) != len(p.Data) {
		t.Fatal("shape mismatch")
	}
	for i := range p.Text {
		if p.Text[i] != q.Text[i] {
			t.Fatalf("text[%d] differs", i)
		}
	}
	if !bytes.Equal(p.Data, q.Data) {
		t.Fatal("data differs")
	}
	if len(q.Symbols) != len(p.Symbols) {
		t.Fatal("symbols lost")
	}
	for n, a := range p.Symbols {
		if q.Symbols[n] != a {
			t.Fatalf("symbol %s differs", n)
		}
	}
	// And it still runs identically.
	c1, c2 := emulator.New(p), emulator.New(q)
	if err := c1.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := c2.Run(0); err != nil {
		t.Fatal(err)
	}
	if c1.Checksum != c2.Checksum || c1.InstCount != c2.InstCount {
		t.Error("deserialized program behaves differently")
	}
}

func TestRoundTripWorkload(t *testing.T) {
	w, _ := workloads.Get("124.m88ksim")
	p := w.MustBuild(0.02)
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := Read(&buf, "w.fsx")
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := emulator.New(p), emulator.New(q)
	if err := c1.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := c2.Run(0); err != nil {
		t.Fatal(err)
	}
	if c1.Checksum != c2.Checksum {
		t.Error("workload round trip diverged")
	}
}

func TestRejectCorruptInputs(t *testing.T) {
	p, err := asm.Assemble("t.s", "main: halt\n")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad), "x"); err == nil {
		t.Error("bad magic accepted")
	}
	// Implausible sizes.
	bad = append([]byte(nil), good...)
	bad[8] = 0xFF
	bad[9] = 0xFF
	bad[10] = 0xFF
	bad[11] = 0xFF
	if _, err := Read(bytes.NewReader(bad), "x"); err == nil {
		t.Error("huge ntext accepted")
	}
	// Truncations at every length must error, never panic.
	for cut := 0; cut < len(good); cut++ {
		if _, err := Read(bytes.NewReader(good[:cut]), "x"); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Garbage instruction words are rejected by program.New.
	bad = append([]byte(nil), good...)
	bad[20] = 0xFF
	bad[23] = 0xFF
	if _, err := Read(bytes.NewReader(bad), "x"); err == nil {
		t.Error("undecodable text accepted")
	}
}
