// Package progfile serializes assembled programs to a compact binary
// format (".fsx"), the reproduction's analogue of the statically linked
// executables FastSim consumed. fsasm writes them; fastsim and fsbench run
// them; symbol tables travel along so disassembly stays annotated.
//
// Layout (all integers little-endian):
//
//	magic   "FSX1"                       4 bytes
//	entry   uint32
//	ntext   uint32                       instruction words
//	ndata   uint32                       data bytes
//	nsyms   uint32
//	text    ntext × uint32
//	data    ndata bytes
//	symbols nsyms × { nameLen uint16, name, addr uint32 }
package progfile

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"fastsim/internal/program"
)

var magic = [4]byte{'F', 'S', 'X', '1'}

// limits guard against corrupt headers allocating absurd amounts.
const (
	maxText = 1 << 24 // 64 MiB of code
	maxData = 1 << 28
	maxSyms = 1 << 20
	maxName = 4096
)

// Write serializes p to w.
func Write(w io.Writer, p *program.Program) error {
	var hdr [20]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:], p.Entry)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(p.Text)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(p.Symbols)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 4*len(p.Text))
	for i, t := range p.Text {
		binary.LittleEndian.PutUint32(buf[4*i:], t)
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	if _, err := w.Write(p.Data); err != nil {
		return err
	}
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if len(n) > maxName {
			return fmt.Errorf("progfile: symbol name %q too long", n[:32])
		}
		var sh [2]byte
		binary.LittleEndian.PutUint16(sh[:], uint16(len(n)))
		if _, err := w.Write(sh[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, n); err != nil {
			return err
		}
		var ab [4]byte
		binary.LittleEndian.PutUint32(ab[:], p.Symbols[n])
		if _, err := w.Write(ab[:]); err != nil {
			return err
		}
	}
	return nil
}

// Read deserializes a program written by Write.
func Read(r io.Reader, name string) (*program.Program, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("progfile: header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("progfile: bad magic %q", hdr[:4])
	}
	entry := binary.LittleEndian.Uint32(hdr[4:])
	ntext := binary.LittleEndian.Uint32(hdr[8:])
	ndata := binary.LittleEndian.Uint32(hdr[12:])
	nsyms := binary.LittleEndian.Uint32(hdr[16:])
	if ntext > maxText || ndata > maxData || nsyms > maxSyms {
		return nil, fmt.Errorf("progfile: implausible sizes text=%d data=%d syms=%d",
			ntext, ndata, nsyms)
	}
	buf := make([]byte, 4*ntext)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("progfile: text: %w", err)
	}
	text := make([]uint32, ntext)
	for i := range text {
		text[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	data := make([]byte, ndata)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("progfile: data: %w", err)
	}
	syms := make(map[string]uint32, nsyms)
	for i := uint32(0); i < nsyms; i++ {
		var sh [2]byte
		if _, err := io.ReadFull(r, sh[:]); err != nil {
			return nil, fmt.Errorf("progfile: symbol %d: %w", i, err)
		}
		nl := binary.LittleEndian.Uint16(sh[:])
		if int(nl) > maxName {
			return nil, fmt.Errorf("progfile: symbol %d name too long", i)
		}
		nb := make([]byte, nl)
		if _, err := io.ReadFull(r, nb); err != nil {
			return nil, fmt.Errorf("progfile: symbol %d: %w", i, err)
		}
		var ab [4]byte
		if _, err := io.ReadFull(r, ab[:]); err != nil {
			return nil, fmt.Errorf("progfile: symbol %d: %w", i, err)
		}
		syms[string(nb)] = binary.LittleEndian.Uint32(ab[:])
	}
	return program.New(name, entry, text, data, syms)
}
