package fastsim

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildCmd compiles one of the repository's commands once per test run.
var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "fastsim-bin")
		if buildErr != nil {
			return
		}
		for _, c := range []string{"fastsim", "fsbench", "fsasm"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, c), "./cmd/"+c)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				t.Logf("build %s: %s", c, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Skipf("cannot build commands: %v", buildErr)
	}
	return buildDir
}

func runCLI(t *testing.T, name string, args ...string) string {
	t.Helper()
	bin := filepath.Join(binaries(t), name)
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIFastsimWorkload(t *testing.T) {
	out := runCLI(t, "fastsim", "-workload", "130.li", "-scale", "0.05")
	for _, want := range []string{"cycles:", "memoization:", "checksum:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIFastsimEnginesAgree(t *testing.T) {
	fast := runCLI(t, "fastsim", "-workload", "129.compress", "-scale", "0.05")
	slow := runCLI(t, "fastsim", "-engine", "slowsim", "-workload", "129.compress", "-scale", "0.05")
	pick := func(out, prefix string) string {
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, prefix) {
				return l
			}
		}
		return ""
	}
	if c1, c2 := pick(fast, "cycles:"), pick(slow, "cycles:"); c1 == "" || c1 != c2 {
		t.Errorf("cycle lines differ:\n%s\n%s", c1, c2)
	}
}

func TestCLIFastsimList(t *testing.T) {
	out := runCLI(t, "fastsim", "-list")
	if strings.Count(out, "\n") != 18 {
		t.Errorf("want 18 workloads:\n%s", out)
	}
}

func TestCLIFastsimJSON(t *testing.T) {
	out := runCLI(t, "fastsim", "-workload", "130.li", "-scale", "0.02", "-json")
	if !strings.Contains(out, `"Cycles"`) || !strings.Contains(out, `"Memo"`) {
		t.Errorf("json output:\n%.400s", out)
	}
}

func TestCLIFsasmRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.s")
	fsx := filepath.Join(dir, "p.fsx")
	if err := os.WriteFile(src, []byte("main:\n\tli a0, 0\n\thalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "fsasm", "-o", fsx, src)
	if !strings.Contains(out, "wrote") {
		t.Errorf("fsasm: %s", out)
	}
	out = runCLI(t, "fsasm", "-run", "-d", fsx)
	if !strings.Contains(out, "executed") || !strings.Contains(out, "halt") {
		t.Errorf("fsasm -run -d: %s", out)
	}
	out = runCLI(t, "fastsim", fsx)
	if !strings.Contains(out, "cycles:") {
		t.Errorf("fastsim on fsx: %s", out)
	}
}

// TestCLIFastsimObservability is the issue's acceptance scenario: a
// memoized run with -sample and -events produces valid, non-empty JSONL.
func TestCLIFastsimObservability(t *testing.T) {
	dir := t.TempDir()
	sampleF := filepath.Join(dir, "s.jsonl")
	eventsF := filepath.Join(dir, "e.jsonl")
	runCLI(t, "fastsim", "-workload", "099.go", "-scale", "0.05",
		"-sample", sampleF, "-interval", "1000", "-events", eventsF, "-progress")

	for _, f := range []struct{ path, field string }{
		{sampleF, `"cycle"`},
		{eventsF, `"type"`},
	} {
		b, err := os.ReadFile(f.path)
		if err != nil || len(b) == 0 {
			t.Fatalf("%s: %v (%d bytes)", f.path, err, len(b))
		}
		dec := json.NewDecoder(strings.NewReader(string(b)))
		lines := 0
		for dec.More() {
			var v map[string]any
			if err := dec.Decode(&v); err != nil {
				t.Fatalf("%s: line %d: %v", f.path, lines+1, err)
			}
			lines++
		}
		if lines == 0 || !strings.Contains(string(b), f.field) {
			t.Errorf("%s: %d JSONL lines, missing %s", f.path, lines, f.field)
		}
	}
}

// TestCLIFastsimMemoTrace: -trace works under the memoizing engine now,
// with per-cycle lines for detailed episodes and fast-forward markers.
func TestCLIFastsimMemoTrace(t *testing.T) {
	dir := t.TempDir()
	traceF := filepath.Join(dir, "t.trace")
	runCLI(t, "fastsim", "-workload", "130.li", "-scale", "0.02", "-trace", traceF)
	b, err := os.ReadFile(traceF)
	if err != nil || len(b) == 0 {
		t.Fatalf("trace file: %v (%d bytes)", err, len(b))
	}
	if !strings.Contains(string(b), "fast-forward") {
		t.Errorf("memoized trace missing fast-forward markers:\n%.400s", b)
	}
}

// TestCLIFastsimSnapshot is the issue's acceptance scenario for the
// persistent p-action cache: -memo-save writes a snapshot, -memo-load
// warm-starts from it with identical results, and a corrupted snapshot
// degrades to a cold start with a warning — exit status still zero.
func TestCLIFastsimSnapshot(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "c.fsnap")

	cold := runCLI(t, "fastsim", "-workload", "129.compress", "-scale", "0.05",
		"-memo-save", snap)
	if !strings.Contains(cold, "saved") || !strings.Contains(cold, "snapshot:") {
		t.Errorf("cold run did not report a save:\n%s", cold)
	}
	if fi, err := os.Stat(snap); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot file: %v", err)
	}

	warm := runCLI(t, "fastsim", "-workload", "129.compress", "-scale", "0.05",
		"-memo-load", snap)
	if !strings.Contains(warm, "warm start") {
		t.Errorf("warm run did not report a load:\n%s", warm)
	}
	pick := func(out, prefix string) string {
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, prefix) {
				return l
			}
		}
		return ""
	}
	for _, prefix := range []string{"cycles:", "checksum:"} {
		if c1, c2 := pick(cold, prefix), pick(warm, prefix); c1 == "" || c1 != c2 {
			t.Errorf("warm run diverged on %q:\n%s\n%s", prefix, c1, c2)
		}
	}

	// Corrupt the snapshot: the run must still succeed (exit 0 via
	// runCLI), warn on stderr, and match the cold results.
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b[9] ^= 0x40
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}
	fallback := runCLI(t, "fastsim", "-workload", "129.compress", "-scale", "0.05",
		"-memo-load", snap)
	if !strings.Contains(fallback, "fastsim: warning:") {
		t.Errorf("corrupt snapshot produced no warning:\n%s", fallback)
	}
	if c1, c2 := pick(cold, "cycles:"), pick(fallback, "cycles:"); c1 == "" || c1 != c2 {
		t.Errorf("fallback run diverged:\n%s\n%s", c1, c2)
	}
}

// TestCLIFsbenchWarmCold exercises the -warmcold mode end to end on one
// tiny workload.
func TestCLIFsbenchWarmCold(t *testing.T) {
	out := runCLI(t, "fsbench", "-warmcold", "-scale", "0.03",
		"-workloads", "130.li", "-q")
	if !strings.Contains(out, "130.li") || !strings.Contains(out, "speedup") {
		t.Errorf("warmcold table:\n%s", out)
	}
}

func TestCLIFsbenchTable1(t *testing.T) {
	out := runCLI(t, "fsbench", "-table", "1")
	if !strings.Contains(out, "Decode 4 instructions") {
		t.Errorf("table 1:\n%s", out)
	}
}

func TestCLIFsbenchSmallTable(t *testing.T) {
	out := runCLI(t, "fsbench", "-table", "2", "-scale", "0.03",
		"-workloads", "130.li", "-q")
	if !strings.Contains(out, "130.li") || !strings.Contains(out, "exactness") {
		t.Errorf("table 2:\n%s", out)
	}
}

func TestCLIFastsimTraceAndDot(t *testing.T) {
	dir := t.TempDir()
	traceF := filepath.Join(dir, "t.trace")
	runCLI(t, "fastsim", "-engine", "slowsim", "-workload", "130.li",
		"-scale", "0.02", "-trace", traceF)
	b, err := os.ReadFile(traceF)
	if err != nil || len(b) == 0 {
		t.Errorf("trace file: %v (%d bytes)", err, len(b))
	}
	dotF := filepath.Join(dir, "g.dot")
	runCLI(t, "fastsim", "-workload", "130.li", "-scale", "0.02", "-dot", dotF)
	b, err = os.ReadFile(dotF)
	if err != nil || !strings.Contains(string(b), "digraph") {
		t.Errorf("dot file: %v", err)
	}
}
