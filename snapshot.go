package fastsim

import (
	"io"

	"fastsim/internal/inspect"
	"fastsim/internal/snapshot"
)

// Snapshot is a read-only handle on a p-action snapshot file (.fsnap),
// opened with OpenSnapshot. It wraps the offline-inspection decode path:
// every integrity check applies (magic, version, checksums, structural
// validation) but no fingerprint is required, so any program's snapshot can
// be examined by any build — fsinspect and external tools use this instead
// of reaching through internal packages. A Snapshot never feeds a live
// cache; warm starts go through WithSnapshotLoad.
type Snapshot struct {
	img *snapshot.Image
}

// OpenSnapshot reads and decodes the snapshot file at path. Failures
// match the usual sentinels: ErrSnapshotCorrupt for damaged bytes,
// ErrSnapshotVersion for format skew.
func OpenSnapshot(path string) (*Snapshot, error) {
	img, err := snapshot.Inspect(path)
	if err != nil {
		return nil, err
	}
	return &Snapshot{img: img}, nil
}

// Fingerprint returns the (program, processor model) identity the cache
// was recorded under.
func (s *Snapshot) Fingerprint() uint64 { return s.img.Fingerprint }

// Configs returns the number of configurations in the image, shells
// included.
func (s *Snapshot) Configs() int { return len(s.img.Graph.Keys) }

// Actions returns the number of action nodes in the image.
func (s *Snapshot) Actions() int { return len(s.img.Graph.Actions) }

// Stats returns the memoization counter state frozen into the snapshot.
func (s *Snapshot) Stats() MemoStats { return s.img.Graph.Stats }

// Report digests the snapshot into a SnapshotReport: chain shapes, action
// kinds, hot chains and warmth hints. topN bounds the hot-chain listing
// (0 selects 10).
func (s *Snapshot) Report(topN int) *SnapshotReport {
	return inspect.AnalyzeSnapshot(s.img, topN)
}

// SnapshotReport is the offline digest of one snapshot file, renderable as
// text (Render) or JSON.
type SnapshotReport = inspect.SnapshotReport

// ChainInfo summarizes one configuration's action chain in a
// SnapshotReport.
type ChainInfo = inspect.ChainInfo

// EventsReport is the offline digest of one structured JSONL event stream,
// renderable as text (Render) or JSON.
type EventsReport = inspect.EventsReport

// AnalyzeEvents digests a JSONL event stream (one Event per line) as
// written by an Observer. Unknown event types are counted and otherwise
// ignored, so streams from newer builds still analyze.
func AnalyzeEvents(r io.Reader) (*EventsReport, error) {
	return inspect.AnalyzeEvents(r)
}
