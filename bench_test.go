// Benchmarks regenerating the measurements behind every table and figure of
// the paper's evaluation. Each benchmark reports, beside ns/op, the custom
// metrics the corresponding table tabulates (Kinsts/sec, speedups, p-action
// cache statistics). bench_scale trades fidelity for time; the fsbench
// command runs the same harness at full scale with formatted output.
//
//	go test -bench=Table2 -benchtime=1x   # one pass over every workload
//	go test -bench=. -benchmem            # everything
package fastsim

import (
	"io"
	"sync"
	"testing"

	"fastsim/internal/cachesim"
	"fastsim/internal/core"
	"fastsim/internal/emulator"
	"fastsim/internal/memo"
	"fastsim/internal/obs"
	"fastsim/internal/program"
	"fastsim/internal/refsim"
	"fastsim/internal/workloads"
)

// benchScale keeps full `go test -bench=.` runs to a few minutes. fsbench
// uses scale 1.0.
const benchScale = 0.1

// progCache is shared across benchmarks, which the testing package may run
// from different goroutines (b.RunParallel, -cpu lists); guard it.
var (
	progCacheMu sync.Mutex
	progCache   = map[string]*program.Program{}
)

func benchProgram(b *testing.B, name string) *program.Program {
	b.Helper()
	progCacheMu.Lock()
	defer progCacheMu.Unlock()
	if p, ok := progCache[name]; ok {
		return p
	}
	w, ok := workloads.Get(name)
	if !ok {
		b.Fatalf("unknown workload %s", name)
	}
	p, err := w.Build(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	progCache[name] = p
	return p
}

func runEngine(b *testing.B, prog *program.Program, memoize bool) *core.Result {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.Memoize = memoize
	r, err := core.Run(prog, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable2 measures SlowSim and FastSim on every workload: the
// memoization speedup of Table 2 is the ratio of the two ns/op figures;
// each run also reports it directly.
func BenchmarkTable2(b *testing.B) {
	for _, w := range workloads.All() {
		b.Run(w.Name+"/SlowSim", func(b *testing.B) {
			prog := benchProgram(b, w.Name)
			var insts uint64
			for i := 0; i < b.N; i++ {
				insts = runEngine(b, prog, false).Insts
			}
			b.ReportMetric(float64(insts), "insts")
		})
		b.Run(w.Name+"/FastSim", func(b *testing.B) {
			prog := benchProgram(b, w.Name)
			var slow, fast *core.Result
			slow = runEngine(b, prog, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fast = runEngine(b, prog, true)
			}
			b.StopTimer()
			if fast.Cycles != slow.Cycles {
				b.Fatal("memoization changed the cycle count")
			}
			b.ReportMetric(slow.WallTime.Seconds()/fast.WallTime.Seconds(), "speedup")
		})
	}
}

// BenchmarkTable3 measures the SimpleScalar surrogate (the conventional
// baseline); compare its Kinsts/sec against BenchmarkTable2's FastSim runs.
func BenchmarkTable3(b *testing.B) {
	for _, w := range workloads.All() {
		b.Run(w.Name+"/SimpleScalar", func(b *testing.B) {
			prog := benchProgram(b, w.Name)
			var r *refsim.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = refsim.Run(prog, refsim.DefaultParams(), cachesim.DefaultConfig(), 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.KInstsPerSec(), "Kinsts/s")
		})
	}
	// The "Program" column: raw functional emulation speed.
	b.Run("native-surrogate/emulator", func(b *testing.B) {
		prog := benchProgram(b, "129.compress")
		for i := 0; i < b.N; i++ {
			cpu := emulator.New(prog)
			if err := cpu.Run(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable4 reports the detailed-vs-replayed instruction split.
func BenchmarkTable4(b *testing.B) {
	for _, w := range workloads.All() {
		b.Run(w.Name, func(b *testing.B) {
			prog := benchProgram(b, w.Name)
			var r *core.Result
			for i := 0; i < b.N; i++ {
				r = runEngine(b, prog, true)
			}
			b.ReportMetric(float64(r.Memo.DetailedInsts), "detailed")
			b.ReportMetric(float64(r.Memo.ReplayInsts), "replayed")
			b.ReportMetric(r.Memo.DetailedFraction()*100, "detailed%")
		})
	}
}

// BenchmarkTable5 reports the p-action cache measurements.
func BenchmarkTable5(b *testing.B) {
	for _, w := range workloads.All() {
		b.Run(w.Name, func(b *testing.B) {
			prog := benchProgram(b, w.Name)
			var r *core.Result
			for i := 0; i < b.N; i++ {
				r = runEngine(b, prog, true)
			}
			b.ReportMetric(float64(r.Memo.PeakBytes)/1024, "cacheKB")
			b.ReportMetric(float64(r.Memo.Configs), "configs")
			b.ReportMetric(float64(r.Memo.Actions), "actions")
			b.ReportMetric(r.Memo.ActionsPerConfig(), "act/cfg")
			b.ReportMetric(r.Memo.CyclesPerConfig(), "cyc/cfg")
			b.ReportMetric(r.Memo.AvgChain(), "avgchain")
		})
	}
}

// BenchmarkFigure7 sweeps the p-action cache limit with the flush-on-full
// policy on the workloads the paper highlights (go tolerates reduction;
// ijpeg degrades sharply).
func BenchmarkFigure7(b *testing.B) {
	limits := []struct {
		name string
		n    int
	}{
		{"16KB", 16 << 10}, {"64KB", 64 << 10},
		{"256KB", 256 << 10}, {"1MB", 1 << 20}, {"unlimited", 0},
	}
	for _, wl := range []string{"099.go", "132.ijpeg", "107.mgrid"} {
		for _, lim := range limits {
			b.Run(wl+"/"+lim.name, func(b *testing.B) {
				prog := benchProgram(b, wl)
				var r *core.Result
				var err error
				for i := 0; i < b.N; i++ {
					cfg := core.DefaultConfig()
					if lim.n > 0 {
						cfg.Memo = memo.Options{Policy: memo.PolicyFlush, Limit: lim.n}
					}
					r, err = core.Run(prog, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.Memo.Flushes), "flushes")
			})
		}
	}
}

// BenchmarkAblationPolicies compares the §4.3 replacement policies at one
// tight limit (the paper: GC performs no better than flushing).
func BenchmarkAblationPolicies(b *testing.B) {
	pols := []memo.Policy{memo.PolicyFlush, memo.PolicyGC, memo.PolicyGenGC}
	for _, pol := range pols {
		b.Run(pol.String(), func(b *testing.B) {
			prog := benchProgram(b, "132.ijpeg")
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Memo = memo.Options{Policy: pol, Limit: 64 << 10}
				if _, err := core.Run(prog, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTracerOverhead measures the span tracer's cost on the FastSim hot
// path: "off" is the tracer-disabled run (nil *Tracer, one pointer check per
// hook — the configuration every other benchmark measures), "cycles" streams
// a full cycle-timebase trace to io.Discard. The off/on ns/op ratio bounds
// what -span-trace costs; the off figures are what the CI perf gate compares
// against BENCH_3.json.
func BenchmarkTracerOverhead(b *testing.B) {
	const wl = "099.go"
	b.Run("off", func(b *testing.B) {
		prog := benchProgram(b, wl)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runEngine(b, prog, true)
		}
	})
	b.Run("cycles", func(b *testing.B) {
		prog := benchProgram(b, wl)
		b.ResetTimer()
		var events uint64
		for i := 0; i < b.N; i++ {
			tr := obs.NewTracer(io.Discard, obs.TracerOptions{})
			cfg := core.DefaultConfig()
			cfg.Tracer = tr
			if _, err := core.Run(prog, cfg); err != nil {
				b.Fatal(err)
			}
			events = tr.Events()
			if err := tr.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(events), "events")
	})
}

// BenchmarkComponents breaks down the cost of the individual engines on a
// common workload: functional emulation, speculative direct-execution under
// the pipeline (SlowSim), and fast-forwarding (FastSim).
func BenchmarkComponents(b *testing.B) {
	const wl = "124.m88ksim"
	b.Run("emulator", func(b *testing.B) {
		prog := benchProgram(b, wl)
		var insts uint64
		for i := 0; i < b.N; i++ {
			cpu := emulator.New(prog)
			if err := cpu.Run(0); err != nil {
				b.Fatal(err)
			}
			insts = cpu.InstCount
		}
		b.ReportMetric(float64(insts)/b.Elapsed().Seconds()*float64(b.N)/1e6, "Minst/s")
	})
	b.Run("slowsim", func(b *testing.B) {
		prog := benchProgram(b, wl)
		var r *core.Result
		for i := 0; i < b.N; i++ {
			r = runEngine(b, prog, false)
		}
		b.ReportMetric(r.KInstsPerSec(), "Kinsts/s")
	})
	b.Run("fastsim", func(b *testing.B) {
		prog := benchProgram(b, wl)
		var r *core.Result
		for i := 0; i < b.N; i++ {
			r = runEngine(b, prog, true)
		}
		b.ReportMetric(r.KInstsPerSec(), "Kinsts/s")
	})
	b.Run("refsim", func(b *testing.B) {
		prog := benchProgram(b, wl)
		var r *refsim.Result
		var err error
		for i := 0; i < b.N; i++ {
			r, err = refsim.Run(prog, refsim.DefaultParams(), cachesim.DefaultConfig(), 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r.KInstsPerSec(), "Kinsts/s")
	})
}
