// Package fastsim is a Go reproduction of FastSim, the memoizing
// out-of-order processor simulator of Schnarr & Larus, "Fast Out-Of-Order
// Processor Simulation Using Memoization" (ASPLOS-VIII, 1998).
//
// FastSim simulates a speculative, out-of-order uniprocessor (a MIPS
// R10000-like microarchitecture) cycle-accurately, and accelerates the
// simulation with two techniques:
//
//   - Speculative direct-execution: the target program runs functionally,
//     decoupled from and ahead of the timing model; mispredicted paths are
//     executed directly and rolled back when the µ-architecture resolves
//     the branch (paper §3).
//   - Fast-forwarding: µ-architecture configurations and the simulator
//     actions they produce are memoized in a p-action cache; revisiting a
//     configuration replays the actions instead of re-running the detailed
//     simulator, with bit-identical statistics (paper §4).
//
// # Quick start
//
//	prog, err := fastsim.Assemble("prog.s", source)
//	res, err := fastsim.Run(prog)
//	fmt.Println(res.Cycles, res.IPC(), res.Memo.AvgChain())
//
// Run takes functional options; the zero-option call is the paper's
// processor model with memoization on. Compare FastSim against its
// non-memoized self (SlowSim) — the results are identical, only the wall
// time differs:
//
//	slow, err := fastsim.Run(prog, fastsim.WithMemoize(false))
//
// Persist the p-action cache across runs for warm starts:
//
//	res, err := fastsim.Run(prog, fastsim.WithSnapshot("prog.fsnap"))
//
// Run and RunContext are the canonical entry points; every knob is a
// functional Option (see docs/API.md for ordering rules and the full
// catalog). Callers holding a fully built Config pass it through
// fastsim.WithConfig; the struct-based RunConfig survives as a deprecated
// wrapper over exactly that.
//
// Compile hot replay chains into flat bytecode for extra replay
// throughput, still bit-identical:
//
//	res, err := fastsim.Run(prog, fastsim.WithReplayCompile(8))
//
// Inspect a snapshot file without touching a live cache:
//
//	snap, err := fastsim.OpenSnapshot("prog.fsnap")
//	fmt.Println(snap.Configs(), snap.Actions())
//
// The packages under internal/ implement the full system: the SV8 ISA and
// assembler, the functional emulator, speculative direct-execution, the
// non-blocking cache hierarchy, the iQ-centric detailed pipeline, the
// p-action cache with all of §4.3's replacement policies, the
// SimpleScalar-surrogate baseline, the 18 SPEC95-like workloads, and the
// harness that regenerates every table and figure of the paper.
package fastsim

import (
	"context"
	"io"

	"fastsim/internal/asm"
	"fastsim/internal/cachesim"
	"fastsim/internal/core"
	"fastsim/internal/emulator"
	"fastsim/internal/faultinject"
	"fastsim/internal/memo"
	"fastsim/internal/minc"
	"fastsim/internal/obs"
	"fastsim/internal/progfile"
	"fastsim/internal/program"
	"fastsim/internal/refsim"
	"fastsim/internal/stats"
	"fastsim/internal/uarch"
	"fastsim/internal/workloads"
)

// Program is a loaded SV8 executable image.
type Program = program.Program

// Config selects the processor model and simulation options.
type Config = core.Config

// Result reports one simulation: cycle-accurate statistics plus the
// program's architectural results.
type Result = core.Result

// PipelineParams are the out-of-order pipeline parameters (paper Table 1).
type PipelineParams = uarch.Params

// CacheConfig is the memory-hierarchy configuration (paper Table 1).
type CacheConfig = cachesim.Config

// MemoOptions configures the p-action cache (policy and size limit).
type MemoOptions = memo.Options

// MemoPolicy selects a p-action cache replacement policy (§4.3).
type MemoPolicy = memo.Policy

// MemoStats reports memoization behaviour (Tables 4 and 5).
type MemoStats = memo.Stats

// BPredConfig selects and sizes the branch predictor.
type BPredConfig = core.BPredConfig

// SnapshotStatus reports a run's p-action snapshot activity
// (Result.Snapshot): what was loaded, what was saved, and the warning text
// when a present snapshot was rejected and the run started cold.
type SnapshotStatus = core.SnapshotStatus

// SharedCache is a process-wide, sharded exchange point for recorded
// p-action graphs, keyed by run fingerprint: concurrent runs of the same
// (program, machine) warm each other under epoch-based publication, with
// quarantine events propagating as epoch poisons. Attach one with
// WithSharedCache; all methods are safe for concurrent use. It is the
// backbone of the multi-tenant simulation server (cmd/fssrv) — see
// docs/SERVER.md.
type SharedCache = memo.SharedCache

// SharedCacheStats aggregates a SharedCache's activity across its shards.
type SharedCacheStats = memo.SharedStats

// SharedStatus reports one run's shared-cache activity (Result.Shared):
// what was acquired, whether the run published a new epoch, and whether it
// poisoned its base.
type SharedStatus = core.SharedStatus

// NewSharedCache builds a SharedCache with at least the given number of
// shards (rounded up to a power of two; <= 0 selects a default of 8).
func NewSharedCache(shards int) *SharedCache { return memo.NewShared(shards) }

// FaultInjector is a deterministic, seed-addressed fault injector for chaos
// testing; arm one with WithFaultInjection. See internal/faultinject and
// docs/ROBUSTNESS.md.
type FaultInjector = faultinject.Injector

// EngineFault is the typed error produced when a panic inside the
// memoization engine (a runtime error, an injected allocation failure) is
// isolated at an episode boundary; it carries the offending configuration's
// fingerprint and the simulated cycle. Match it with
// errors.Is(err, ErrEngineFault) or errors.As.
type EngineFault = memo.EngineFault

// ErrEngineFault is the sentinel every EngineFault matches via errors.Is.
var ErrEngineFault = memo.ErrEngineFault

// NewChaosInjector returns the chaos preset: every fault site armed at
// deterministic, seed-addressed rates — occasional transient snapshot IO
// failures, one possible truncation, a handful of chain bit flips, and a
// rare allocation failure. Equal seeds reproduce the exact same fault
// sequence. Pair it with WithShadowVerify(1) so no corrupted chain can slip
// into the statistics unverified.
func NewChaosInjector(seed uint64) *FaultInjector { return faultinject.Chaos(seed) }

// Replacement policies of §4.3.
const (
	PolicyUnbounded = memo.PolicyUnbounded
	PolicyFlush     = memo.PolicyFlush
	PolicyGC        = memo.PolicyGC
	PolicyGenGC     = memo.PolicyGenGC
)

// Workload is one of the 18 SPEC95-like benchmarks.
type Workload = workloads.Workload

// Observer is the simulator-wide observability layer: a metrics registry,
// an interval time-series sampler, a structured JSONL event stream, and a
// wall-clock progress heartbeat. Attach one via Config.Observer; it is
// strictly read-only, so Result is bit-identical with or without it — on
// FastSim and SlowSim alike. A nil Observer costs one pointer check per
// hook. See docs/OBSERVABILITY.md.
type Observer = obs.Observer

// ObserverOptions selects an Observer's outputs (any writer may be nil).
type ObserverOptions = obs.Options

// SampleRow is one row of the sampler's JSONL time series.
type SampleRow = obs.Row

// Event is one line of the structured JSONL event stream.
type Event = obs.Event

// DefaultSampleInterval is the sampler period (simulated cycles) used when
// ObserverOptions.SampleInterval is zero.
const DefaultSampleInterval = obs.DefaultSampleInterval

// NewObserver builds an Observer with the requested outputs enabled.
func NewObserver(o ObserverOptions) *Observer { return obs.New(o) }

// Tracer records a hierarchical span trace of one run (run ⊃ record/replay
// episodes, reclaims, snapshot IO, quarantine and guard instants) as Chrome
// trace-event JSON loadable in Perfetto. Attach one via Config.Tracer or
// WithSpanTrace; like the Observer it is strictly read-only, nil-safe, and
// one pointer check per hook when disabled. Close it after the run. See
// docs/OBSERVABILITY.md.
type Tracer = obs.Tracer

// TracerOptions configures NewTracer (timebase and process label).
type TracerOptions = obs.TracerOptions

// Timebase selects the clock a Tracer stamps spans with.
type Timebase = obs.Timebase

// Tracer timebases: simulated cycles (deterministic) or host microseconds
// (profiling).
const (
	TimebaseCycles = obs.TimebaseCycles
	TimebaseWall   = obs.TimebaseWall
)

// NewTracer builds a Tracer writing trace-event JSON to w.
func NewTracer(w io.Writer, o TracerOptions) *Tracer { return obs.NewTracer(w, o) }

// Published is the cross-goroutine hand-off point for metrics snapshots:
// set ObserverOptions.Publish to one and the simulation publishes an
// immutable registry snapshot at a bounded cycle cadence, which readers
// (the -debug-addr server) load via Latest. The zero value is ready to use.
type Published = obs.Published

// MetricsSnapshot is one immutable published registry snapshot.
type MetricsSnapshot = obs.MetricsSnapshot

// Percent returns 100*part/whole, or 0 when whole is zero — the shared
// guard for rendering "x% of y" from statistics that may be empty.
func Percent(part, whole uint64) float64 { return stats.Percent(part, whole) }

// DefaultConfig returns the paper's processor model with memoization
// enabled and an unbounded p-action cache.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultPipelineParams returns the paper's Table 1 pipeline.
func DefaultPipelineParams() PipelineParams { return uarch.DefaultParams() }

// DefaultCacheConfig returns the paper's Table 1 cache hierarchy.
func DefaultCacheConfig() CacheConfig { return cachesim.DefaultConfig() }

// Run simulates prog cycle-accurately under DefaultConfig plus opts:
// FastSim unless WithMemoize(false) selects the SlowSim baseline. The two
// produce bit-identical statistics.
func Run(prog *Program, opts ...Option) (*Result, error) {
	return core.Run(prog, buildConfig(opts))
}

// RunContext is Run with cancellation: when ctx is cancelled the
// simulation stops at the next episode boundary and returns ctx's error,
// without writing any snapshot file.
func RunContext(ctx context.Context, prog *Program, opts ...Option) (*Result, error) {
	return core.RunContext(ctx, prog, buildConfig(opts))
}

// RunConfig simulates prog under a fully built Config — the struct-based
// form of Run.
//
// Deprecated: use Run(prog, WithConfig(cfg)), which this is now literally
// implemented as; further options can then compose on top of the struct.
func RunConfig(prog *Program, cfg Config) (*Result, error) {
	return Run(prog, WithConfig(cfg))
}

// Assemble translates SV8 assembly source into a runnable Program.
func Assemble(name, src string) (*Program, error) { return asm.Assemble(name, src) }

// Disassemble renders a program's text segment as an annotated listing.
func Disassemble(p *Program) string { return asm.Disassemble(p) }

// Emulate runs prog functionally (no timing) and returns the retired
// instruction count, checksum and exit code. It is the semantic oracle and
// the "native execution" surrogate of the evaluation.
func Emulate(prog *Program, maxInsts uint64) (insts uint64, checksum, exitCode uint32, err error) {
	cpu := emulator.New(prog)
	if err := cpu.Run(maxInsts); err != nil {
		return cpu.InstCount, cpu.Checksum, cpu.ExitCode, err
	}
	return cpu.InstCount, cpu.Checksum, cpu.ExitCode, nil
}

// CompileMinC compiles MinC source (a tiny C-like language; see
// internal/minc) into a runnable Program.
func CompileMinC(name, src string) (*Program, error) {
	return minc.CompileProgram(name, src)
}

// WriteProgram serializes an assembled program to the binary .fsx format.
func WriteProgram(w io.Writer, p *Program) error { return progfile.Write(w, p) }

// ReadProgram deserializes a program written by WriteProgram.
func ReadProgram(r io.Reader, name string) (*Program, error) { return progfile.Read(r, name) }

// RefResult reports a run of the conventional (SimpleScalar-surrogate)
// out-of-order simulator.
type RefResult = refsim.Result

// RunReference simulates prog on the conventional baseline simulator.
func RunReference(prog *Program, maxCycles uint64) (*RefResult, error) {
	return refsim.Run(prog, refsim.DefaultParams(), cachesim.DefaultConfig(), maxCycles)
}

// Workloads returns the 18 SPEC95-like benchmarks in the paper's order.
func Workloads() []*Workload { return workloads.All() }

// GetWorkload looks a workload up by name (e.g. "099.go").
func GetWorkload(name string) (*Workload, bool) { return workloads.Get(name) }
