package fastsim

import "testing"

const demoSrc = `
main:
	li   t0, 400
	li   t1, 0
loop:
	add  t1, t1, t0
	addi t0, t0, -1
	bnez t0, loop
	mv   a0, t1
	sys  2
	li   a0, 0
	halt
`

func TestPublicAPIRoundTrip(t *testing.T) {
	prog, err := Assemble("demo.s", demoSrc)
	if err != nil {
		t.Fatal(err)
	}

	insts, checksum, exit, err := Emulate(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exit != 0 || checksum == 0 || insts == 0 {
		t.Fatalf("emulate: insts=%d checksum=%#x exit=%d", insts, checksum, exit)
	}

	fast, err := Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(prog, WithMemoize(false))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles != slow.Cycles || fast.Checksum != checksum || fast.Insts != insts {
		t.Errorf("engines disagree: fast=%d slow=%d cycles, checksum %#x vs %#x",
			fast.Cycles, slow.Cycles, fast.Checksum, checksum)
	}

	ref, err := RunReference(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Checksum != checksum {
		t.Error("reference simulator functional mismatch")
	}

	if d := Disassemble(prog); len(d) == 0 {
		t.Error("empty disassembly")
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	if len(Workloads()) != 18 {
		t.Fatal("workload registry incomplete")
	}
	w, ok := GetWorkload("107.mgrid")
	if !ok {
		t.Fatal("mgrid missing")
	}
	prog, err := w.Build(0.03)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || !res.Memoized {
		t.Error("implausible result")
	}
}

func TestPublicAPIMemoPolicies(t *testing.T) {
	prog, err := Assemble("demo.s", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []MemoPolicy{PolicyFlush, PolicyGC, PolicyGenGC} {
		r, err := Run(prog, WithPolicy(pol, 8<<10))
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if r.Cycles != base.Cycles {
			t.Errorf("%v: cycles %d != %d", pol, r.Cycles, base.Cycles)
		}
	}
}
