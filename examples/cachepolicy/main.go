// Cachepolicy: reproduce the shape of Figure 7 on one workload — sweep the
// p-action cache limit under the flush-on-full policy — and compare the
// replacement policies of §4.3 (the paper's conclusion: a copying collector
// is not worth its complexity over simply flushing).
package main

import (
	"fmt"
	"log"

	"fastsim"
)

func main() {
	w, ok := fastsim.GetWorkload("132.ijpeg") // the paper's most limit-sensitive workload
	if !ok {
		log.Fatal("workload missing")
	}
	prog, err := w.Build(0.5)
	if err != nil {
		log.Fatal(err)
	}

	slow, err := fastsim.Run(prog, fastsim.WithMemoize(false))
	if err != nil {
		log.Fatal(err)
	}

	unbounded, err := fastsim.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: natural p-action cache %d KB, unbounded speedup %.1fx\n\n",
		w.Name, unbounded.Memo.PeakBytes>>10,
		slow.WallTime.Seconds()/unbounded.WallTime.Seconds())

	fmt.Println("Figure 7 sweep (flush-on-full):")
	fmt.Printf("%10s %10s %10s %10s\n", "limit", "speedup", "flushes", "identical")
	for _, limit := range []int{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		r, err := fastsim.Run(prog, fastsim.WithPolicy(fastsim.PolicyFlush, limit))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8dKB %9.1fx %10d %10v\n",
			limit>>10, slow.WallTime.Seconds()/r.WallTime.Seconds(),
			r.Memo.Flushes, r.Cycles == slow.Cycles)
	}

	fmt.Println("\nReplacement policies at a tight limit (64 KB):")
	fmt.Printf("%12s %10s %12s %10s\n", "policy", "speedup", "evictions", "identical")
	for _, pol := range []fastsim.MemoPolicy{
		fastsim.PolicyFlush, fastsim.PolicyGC, fastsim.PolicyGenGC,
	} {
		r, err := fastsim.Run(prog, fastsim.WithPolicy(pol, 64<<10))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12s %9.1fx %12d %10v\n",
			pol, slow.WallTime.Seconds()/r.WallTime.Seconds(),
			r.Memo.Flushes+r.Memo.Collections, r.Cycles == slow.Cycles)
	}
	fmt.Println("\nEvery run produced identical cycle counts: the policy only trades")
	fmt.Println("memory for speed, never accuracy (paper §4.3).")
}
