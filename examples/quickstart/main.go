// Quickstart: assemble a small SV8 program, simulate it cycle-accurately
// with and without memoization, and confirm the paper's headline property —
// fast-forwarding changes nothing but the wall time.
package main

import (
	"fmt"
	"log"

	"fastsim"
)

const source = `
# Sum of squares 1..n with a function call per iteration.
.data
n:	.word 2000
.text
main:
	la   t0, n
	lw   s0, 0(t0)        # n
	li   s1, 0            # sum
loop:
	mv   a0, s0
	call square
	add  s1, s1, a0
	addi s0, s0, -1
	bnez s0, loop
	mv   a0, s1
	sys  2                # fold the result into the program checksum
	li   a0, 0
	halt

square:
	mul  a0, a0, a0
	ret
`

func main() {
	prog, err := fastsim.Assemble("sumsq.s", source)
	if err != nil {
		log.Fatal(err)
	}

	// FastSim: speculative direct-execution + fast-forwarding memoization
	// (the zero-option default).
	fast, err := fastsim.Run(prog)
	if err != nil {
		log.Fatal(err)
	}

	// SlowSim: the same simulator with memoization disabled.
	slow, err := fastsim.Run(prog, fastsim.WithMemoize(false))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program:   %d instructions retired, checksum %#x\n",
		fast.Insts, fast.Checksum)
	fmt.Printf("FastSim:   %8d cycles  (IPC %.2f)  in %v\n",
		fast.Cycles, fast.IPC(), fast.WallTime)
	fmt.Printf("SlowSim:   %8d cycles  (IPC %.2f)  in %v\n",
		slow.Cycles, slow.IPC(), slow.WallTime)
	fmt.Printf("identical: %v — memoization is exact (paper §4)\n",
		fast.Cycles == slow.Cycles && fast.Checksum == slow.Checksum)
	fmt.Printf("speedup:   %.1fx from fast-forwarding\n",
		slow.WallTime.Seconds()/fast.WallTime.Seconds())
	fmt.Printf("p-action cache: %d configurations, %d actions, %d KB; "+
		"%.3f%% of instructions simulated in detail\n",
		fast.Memo.Configs, fast.Memo.Actions, fast.Memo.PeakBytes>>10,
		fast.Memo.DetailedFraction()*100)
}
