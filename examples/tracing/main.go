// Tracing: look inside the mechanisms — disassemble a program, watch
// speculative direct-execution record control points and roll back wrong
// paths, and inspect the memoization statistics that drive Tables 4 and 5.
package main

import (
	"fmt"
	"log"

	"fastsim"
)

const source = `
# A loop whose branch alternates direction — hard for 2-bit counters,
# so speculative direct-execution rolls back often.
main:
	li   s0, 300          # iterations
	li   s1, 0            # accumulator
loop:
	andi t0, s0, 1
	beqz t0, even
	addi s1, s1, 7        # odd path
	j    next
even:
	slli s1, s1, 1        # even path
next:
	addi s0, s0, -1
	bnez s0, loop
	mv   a0, s1
	sys  2
	li   a0, 0
	halt
`

func main() {
	prog, err := fastsim.Assemble("alternating.s", source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== disassembly ===")
	fmt.Print(fastsim.Disassemble(prog))

	res, err := fastsim.Run(prog, fastsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== speculative direct-execution (paper §3.2) ===")
	d := res.Direct
	fmt.Printf("functional instructions executed: %d\n", d.Insts)
	fmt.Printf("  on wrong (rolled-back) paths:   %d (%.1f%%)\n",
		d.WrongPathInsts, 100*float64(d.WrongPathInsts)/float64(d.Insts))
	fmt.Printf("bQ register checkpoints taken:    %d (high water %d of 4)\n",
		d.Checkpoints, d.BQHighWater)
	fmt.Printf("rollbacks (mispredicts resolved): %d\n", d.Rollbacks)
	fmt.Printf("branch predictor: %d/%d mispredicted (%.1f%%)\n",
		res.BPredMispredicts, res.BPredPredicts,
		100*float64(res.BPredMispredicts)/float64(res.BPredPredicts))

	fmt.Println("\n=== fast-forwarding (paper §4) ===")
	m := res.Memo
	fmt.Printf("configurations: %d (avg %0.1f bytes compressed)\n",
		m.Configs, float64(m.ConfigBytesC)/float64(m.Configs))
	fmt.Printf("actions:        %d (%.1f per configuration dynamically)\n",
		m.Actions, m.ActionsPerConfig())
	fmt.Printf("lookups:        %d (%d hits)\n", m.Lookups, m.Hits)
	fmt.Printf("episodes:       %d recorded in detail, %d replayed\n",
		m.EpisodesRecord, m.EpisodesReplay)
	fmt.Printf("instructions:   %d detailed vs %d replayed (%.3f%% detailed)\n",
		m.DetailedInsts, m.ReplayInsts, m.DetailedFraction()*100)
	fmt.Printf("replay chains:  average %.0f actions, max %d\n",
		m.AvgChain(), m.ChainMax)
	fmt.Printf("unseen-outcome stops (new graph branches): %d\n", m.EdgeMisses)

	fmt.Printf("\nfinal: %d cycles, checksum %#x\n", res.Cycles, res.Checksum)
}
