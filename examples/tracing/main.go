// Tracing: look inside the mechanisms — disassemble a program, watch
// speculative direct-execution record control points and roll back wrong
// paths, inspect the memoization statistics that drive Tables 4 and 5, and
// attach the observability layer to stream structured events from the run.
// (The fastsim CLI exposes the same layer as -sample, -events and
// -progress; see docs/OBSERVABILITY.md.)
package main

import (
	"bufio"
	"fmt"
	"log"
	"strings"

	"fastsim"
)

const source = `
# A loop whose branch alternates direction — hard for 2-bit counters,
# so speculative direct-execution rolls back often.
main:
	li   s0, 300          # iterations
	li   s1, 0            # accumulator
loop:
	andi t0, s0, 1
	beqz t0, even
	addi s1, s1, 7        # odd path
	j    next
even:
	slli s1, s1, 1        # even path
next:
	addi s0, s0, -1
	bnez s0, loop
	mv   a0, s1
	sys  2
	li   a0, 0
	halt
`

func main() {
	prog, err := fastsim.Assemble("alternating.s", source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== disassembly ===")
	fmt.Print(fastsim.Disassemble(prog))

	// Attach an Observer so the run also emits its structured event
	// stream (episode record/replay boundaries, rollbacks, …). The layer
	// is read-only: the Result is bit-identical with or without it.
	var eventLog strings.Builder
	obs := fastsim.NewObserver(fastsim.ObserverOptions{EventW: &eventLog})

	res, err := fastsim.Run(prog, fastsim.WithObserver(obs))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== speculative direct-execution (paper §3.2) ===")
	d := res.Direct
	fmt.Printf("functional instructions executed: %d\n", d.Insts)
	fmt.Printf("  on wrong (rolled-back) paths:   %d (%.1f%%)\n",
		d.WrongPathInsts, fastsim.Percent(d.WrongPathInsts, d.Insts))
	fmt.Printf("bQ register checkpoints taken:    %d (high water %d of 4)\n",
		d.Checkpoints, d.BQHighWater)
	fmt.Printf("rollbacks (mispredicts resolved): %d\n", d.Rollbacks)
	fmt.Printf("branch predictor: %d/%d mispredicted (%.1f%%)\n",
		res.BPredMispredicts, res.BPredPredicts,
		fastsim.Percent(res.BPredMispredicts, res.BPredPredicts))

	fmt.Println("\n=== fast-forwarding (paper §4) ===")
	m := res.Memo
	fmt.Printf("configurations: %d (avg %0.1f bytes compressed)\n",
		m.Configs, float64(m.ConfigBytesC)/float64(m.Configs))
	fmt.Printf("actions:        %d (%.1f per configuration dynamically)\n",
		m.Actions, m.ActionsPerConfig())
	fmt.Printf("lookups:        %d (%d hits)\n", m.Lookups, m.Hits)
	fmt.Printf("episodes:       %d recorded in detail, %d replayed\n",
		m.EpisodesRecord, m.EpisodesReplay)
	fmt.Printf("instructions:   %d detailed vs %d replayed (%.3f%% detailed)\n",
		m.DetailedInsts, m.ReplayInsts, m.DetailedFraction()*100)
	fmt.Printf("replay chains:  average %.0f actions, max %d\n",
		m.AvgChain(), m.ChainMax)
	fmt.Printf("unseen-outcome stops (new graph branches): %d\n", m.EdgeMisses)

	fmt.Println("\n=== observability: first events of the JSONL stream ===")
	sc := bufio.NewScanner(strings.NewReader(eventLog.String()))
	total := 0
	for sc.Scan() {
		if total < 6 {
			fmt.Println(sc.Text())
		}
		total++
	}
	fmt.Printf("... %d events in all\n", total)

	fmt.Printf("\nfinal: %d cycles, checksum %#x\n", res.Cycles, res.Checksum)
}
