// Minc: write a workload in MinC (the bundled C-like language), compile it
// to SV8, and simulate it — the high-level path a user would actually take,
// standing in for the C-compiled SPEC binaries of the original FastSim.
package main

import (
	"fmt"
	"log"

	"fastsim"
)

const source = `
// Collatz trajectory lengths: branchy, data-dependent control flow.
var lengths[512];

func collatz(n) {
	var steps = 0;
	while (n != 1) {
		if (n % 2 == 0) { n = n / 2; }
		else            { n = 3 * n + 1; }
		steps = steps + 1;
	}
	return steps;
}

func main() {
	var i = 1;
	var longest = 0;
	var at = 0;
	while (i < 512) {
		lengths[i] = collatz(i);
		if (lengths[i] > longest) {
			longest = lengths[i];
			at = i;
		}
		i = i + 1;
	}
	check(longest);
	check(at);
	return 0;
}
`

func main() {
	prog, err := fastsim.CompileMinC("collatz.mc", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d instructions of SV8\n", len(prog.Text))

	fast, err := fastsim.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	slow, err := fastsim.Run(prog, fastsim.WithMemoize(false))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated: %d instructions in %d cycles (IPC %.2f)\n",
		fast.Insts, fast.Cycles, fast.IPC())
	fmt.Printf("mispredicts: %d (Collatz branches are data-dependent)\n",
		fast.BPredMispredicts)
	fmt.Printf("FastSim == SlowSim: %v; fast-forwarding speedup %.1fx\n",
		fast.Cycles == slow.Cycles,
		slow.WallTime.Seconds()/fast.WallTime.Seconds())
}
