// Custompipeline: the iQ abstraction "can be easily adapted to model a
// variety of pipeline designs" (paper §4.1). This example simulates the
// same workload on three machines — the paper's R10000-like default, a
// narrow 2-wide machine, and an aggressive 8-wide one — and shows that
// memoization stays exact under every configuration while the IPC and the
// p-action cache shape change with the machine.
package main

import (
	"fmt"
	"log"

	"fastsim"
)

func main() {
	w, ok := fastsim.GetWorkload("103.su2cor")
	if !ok {
		log.Fatal("workload missing")
	}
	prog, err := w.Build(0.4)
	if err != nil {
		log.Fatal(err)
	}

	type machine struct {
		name string
		cfg  fastsim.Config
	}
	narrow := fastsim.DefaultConfig()
	narrow.Uarch.FetchWidth = 2
	narrow.Uarch.DecodeWidth = 2
	narrow.Uarch.RetireWidth = 2
	narrow.Uarch.IntALUs = 1
	narrow.Uarch.FPUs = 1
	narrow.Uarch.ActiveList = 16

	wide := fastsim.DefaultConfig()
	wide.Uarch.FetchWidth = 8
	wide.Uarch.DecodeWidth = 8
	wide.Uarch.RetireWidth = 8
	wide.Uarch.IntALUs = 4
	wide.Uarch.FPUs = 4
	wide.Uarch.AddrAdders = 2
	wide.Uarch.ActiveList = 64
	wide.Uarch.MaxSpecBranches = 8

	smallCache := fastsim.DefaultConfig()
	smallCache.Cache.L1Size = 4 << 10
	smallCache.Cache.L2Size = 64 << 10

	machines := []machine{
		{"R10000-like (paper Table 1)", fastsim.DefaultConfig()},
		{"narrow 2-wide", narrow},
		{"aggressive 8-wide", wide},
		{"default core, tiny caches", smallCache},
	}

	fmt.Printf("workload %s\n\n", w.Name)
	fmt.Printf("%-28s %12s %7s %10s %10s %9s\n",
		"machine", "cycles", "IPC", "configs", "cacheKB", "exact")
	for _, m := range machines {
		fast, err := fastsim.Run(prog, fastsim.WithConfig(m.cfg))
		if err != nil {
			log.Fatal(err)
		}
		slow, err := fastsim.Run(prog, fastsim.WithConfig(m.cfg), fastsim.WithMemoize(false))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12d %7.2f %10d %10d %9v\n",
			m.name, fast.Cycles, fast.IPC(), fast.Memo.Configs,
			fast.Memo.PeakBytes>>10, fast.Cycles == slow.Cycles)
	}
	fmt.Println("\nWider machines finish in fewer cycles; the memoized results stay")
	fmt.Println("bit-identical to detailed simulation on every configuration.")
}
