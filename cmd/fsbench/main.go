// Command fsbench regenerates the paper's evaluation: Tables 2-5, Figure 7,
// and the ablations discussed in §4-5.
//
// Usage:
//
//	fsbench -table 1                # processor parameters
//	fsbench -table 2 -scale 1       # Table 2 (and 4, 5 share the same run)
//	fsbench -table 3                # adds the SimpleScalar surrogate
//	fsbench -all                    # Tables 2-5 from one suite run
//	fsbench -figure 7               # cache-limit sweep (slow: many runs)
//	fsbench -warmcold               # snapshot warm-start vs cold-start timing
//	fsbench -replaycompare          # flat replay bytecode vs pointer replay (bit-identity + speed)
//	fsbench -chaos -seed 7          # fault-injection suite: self-heal or typed error
//	fsbench -serverchaos            # fssrv chaos: crash recovery, journal faults, shedding
//	fsbench -ablation gc|direct|encoding
//	fsbench -workloads 099.go,107.mgrid  # restrict any of the above
//	fsbench -all -j 4               # fan runs over 4 workers (-j 1: sequential)
//
// Every mode fans its independent simulations over a deterministic worker
// pool; tables and JSON are byte-identical for any -j value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fastsim/internal/debugsrv"
	"fastsim/internal/tablegen"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate table N (1-5)")
		figure    = flag.Int("figure", 0, "regenerate figure N (7)")
		ablation  = flag.String("ablation", "", "run an ablation: gc | direct | encoding | bpred | inorder")
		all       = flag.Bool("all", false, "regenerate tables 2-5 from one run")
		warmcold  = flag.Bool("warmcold", false, "measure snapshot warm-start vs cold-start wall time")
		replaycmp = flag.Bool("replaycompare", false, "compare flat replay bytecode against pointer replay: bit-identity matrix + warm throughput")
		compileN  = flag.Int("compile-threshold", 1, "replay-compile threshold for -replaycompare (Nth replay entry compiles the chain)")
		rounds    = flag.Int("rounds", 3, "warm throughput rounds per mode for -replaycompare")
		chaos     = flag.Bool("chaos", false, "run the fault-injection suite: every fault must self-heal or fail typed")
		svchaos   = flag.Bool("serverchaos", false, "run the fssrv chaos suite: crash recovery, journal faults, load shedding — every job recovered, retried, or typed")
		artifacts = flag.String("artifacts", "", "directory receiving journal images from -serverchaos for post-mortem inspection")
		seed      = flag.Uint64("seed", 1, "fault-injection seed for -chaos/-serverchaos")
		sweep     = flag.Bool("sweep", false, "run the design-space sweep")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		names     = flag.String("workloads", "", "comma-separated workload subset")
		jobs      = flag.Int("j", 0, "worker-pool width: 0 = all CPUs, 1 = sequential")
		quiet     = flag.Bool("q", false, "suppress progress output")
		asJSON    = flag.Bool("json", false, "emit suite results as JSON (with -table/-all)")
		debug     = flag.String("debug-addr", "", "serve pprof/expvar/status on this address (e.g. :6060) while the suite runs")
	)
	flag.Parse()

	if *debug != "" {
		srv, err := debugsrv.Start(*debug, debugsrv.Options{
			Info: map[string]string{
				"command": "fsbench",
				"args":    strings.Join(os.Args[1:], " "),
			},
			Progress: func() map[string]string {
				done, total := tablegen.ProgressCounts()
				return map[string]string{"units": fmt.Sprintf("%d/%d", done, total)}
			},
		})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "fsbench: debug server on http://%s/\n", srv.Addr())
	}

	var subset []string
	if *names != "" {
		subset = strings.Split(*names, ",")
	}
	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	opts := tablegen.Options{Scale: *scale, Workloads: subset, Verbose: progress, Jobs: *jobs}

	switch {
	case *table == 1:
		fmt.Print(tablegen.Table1())

	case *table >= 2 && *table <= 5 || *all:
		opts.RunRef = *table == 3 || *all
		suite, err := tablegen.Run(opts)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			if err := suite.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		switch {
		case *all:
			fmt.Println(suite.Table2())
			fmt.Println(suite.Table3())
			fmt.Println(suite.Table4())
			fmt.Println(suite.Table5())
		case *table == 2:
			fmt.Println(suite.Table2())
		case *table == 3:
			fmt.Println(suite.Table3())
		case *table == 4:
			fmt.Println(suite.Table4())
		case *table == 5:
			fmt.Println(suite.Table5())
		}
		fmt.Print(suite.Verify())

	case *warmcold:
		rows, err := tablegen.RunWarmCold(subset, *scale, "", *jobs)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			if err := tablegen.WriteWarmColdJSON(os.Stdout, rows); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Println(tablegen.RenderWarmCold(rows))

	case *replaycmp:
		rows, err := tablegen.RunReplayCompare(subset, *scale, *compileN, *jobs)
		if err != nil {
			fatal(err)
		}
		tpName := "099.go"
		if len(subset) > 0 {
			tpName = subset[0]
		}
		tp, err := tablegen.RunReplayThroughput(tpName, *scale, *compileN, *rounds)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			if err := tablegen.WriteReplayCompareJSON(os.Stdout, *compileN, rows, tp); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Println(tablegen.RenderReplayCompare(rows, tp))

	case *chaos:
		rows, err := tablegen.RunChaos(subset, *scale, *seed, *jobs)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			if err := tablegen.WriteChaosJSON(os.Stdout, rows); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Println(tablegen.RenderChaos(rows))

	case *svchaos:
		rows, err := tablegen.RunServerChaos(*scale, *seed, *artifacts)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			if err := tablegen.WriteServerChaosJSON(os.Stdout, rows); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Println(tablegen.RenderServerChaos(rows))

	case *sweep:
		res, err := tablegen.RunSweep(nil, subset, *scale, true, *jobs)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())

	case *figure == 7:
		res, err := tablegen.Figure7(opts, nil, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())

	case *ablation == "gc":
		rows, err := tablegen.RunGCAblation(subset, *scale, 0, *jobs)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tablegen.RenderGCAblation(rows))

	case *ablation == "direct":
		rows, err := tablegen.RunDirectAblation(subset, *scale, *jobs)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tablegen.RenderDirectAblation(rows))

	case *ablation == "bpred":
		rows, err := tablegen.RunBPredAblation(subset, *scale, *jobs)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tablegen.RenderBPredAblation(rows))

	case *ablation == "inorder":
		rows, err := tablegen.RunInOrderAblation(subset, *scale, *jobs)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tablegen.RenderInOrderAblation(rows))

	case *ablation == "encoding":
		rows, err := tablegen.RunEncodingAblation(subset, *scale, *jobs)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tablegen.RenderEncodingAblation(rows))

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsbench:", err)
	os.Exit(1)
}
