// Command fastsim runs one program or workload under a chosen simulation
// engine and prints its statistics.
//
// Usage:
//
//	fastsim [flags] <program.s>        # simulate an SV8 assembly file
//	fastsim [flags] -workload 099.go   # simulate a built-in workload
//	fastsim -list                      # list the built-in workloads
//
// Engines: -engine fastsim (default), slowsim, refsim, emulate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"fastsim"
	"fastsim/internal/debugsrv"
	"fastsim/internal/memo"
	"fastsim/internal/micro"
	"fastsim/internal/profile"
	"fastsim/internal/tablegen"
	"fastsim/internal/workloads"
)

func main() {
	var (
		engine   = flag.String("engine", "fastsim", "engine: fastsim | slowsim | refsim | emulate")
		workload = flag.String("workload", "", "run a built-in workload instead of a file")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		input    = flag.String("input", "", "named workload size: test | train | ref (overrides -scale)")
		policy   = flag.String("policy", "unbounded", "p-action cache policy: unbounded | flush | gc | gengc")
		limit    = flag.Int("limit", 0, "p-action cache limit in bytes (0 = unlimited)")
		memoLoad = flag.String("memo-load", "", "warm-start the p-action cache from this snapshot file (missing/rejected files start cold)")
		memoSave = flag.String("memo-save", "", "save the p-action cache to this snapshot file after the run (atomic)")
		budget   = flag.Int("memo-budget", 0, "hard p-action cache memory budget in bytes, enforced for every policy (0 = off)")
		verify   = flag.Float64("verify", 0, "shadow-verification rate in [0,1]: fraction of cache hits re-executed in detail and cross-checked")
		compileN = flag.Int("replay-compile", 0, "compile chains into flat replay bytecode after N replay entries (0 = off)")
		chaos    = flag.Uint64("chaos", 0, "arm the chaos fault-injection preset with this seed (0 = off); implies -verify 1 unless set explicitly")
		trace    = flag.String("trace", "", "write a pipetrace to this file (per-cycle under slowsim; episode-granular under fastsim)")
		spanOut  = flag.String("span-trace", "", "write a Chrome trace-event span trace (Perfetto-loadable JSON) to this file")
		spanTB   = flag.String("span-timebase", "cycles", "span-trace timebase: cycles (deterministic) | wall (profiling)")
		debug    = flag.String("debug-addr", "", "serve the live debug HTTP endpoints (pprof, expvar, /metrics, /status) on this address")
		hist     = flag.Bool("hist", false, "print load-latency and replay-chain histograms")
		sample   = flag.String("sample", "", "write a JSONL time-series sample row every -interval cycles to this file")
		interval = flag.Uint64("interval", fastsim.DefaultSampleInterval, "sampling interval in simulated cycles for -sample")
		events   = flag.String("events", "", "write the structured JSONL event stream to this file")
		progress = flag.Bool("progress", false, "print a wall-clock progress heartbeat to stderr")
		dot      = flag.String("dot", "", "write the p-action graph (Graphviz DOT) to this file")
		asJSON   = flag.Bool("json", false, "print the result as JSON")
		list     = flag.Bool("list", false, "list built-in workloads and exit")
		params   = flag.Bool("params", false, "print the processor model parameters and exit")
		calib    = flag.Bool("calibrate", false, "measure the machine with probe programs and exit")
		profFlag = flag.Bool("profile", false, "print a flat execution profile of the target program")
	)
	flag.Parse()

	if *params {
		fmt.Print(tablegen.Table1())
		return
	}
	if *calib {
		cal, err := micro.Calibrate(fastsim.DefaultConfig(), nil)
		if err != nil {
			fatal(err)
		}
		fmt.Print(cal.Render())
		return
	}
	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-14s [%s] %s\n", w.Name, w.Category, w.Description)
		}
		return
	}

	if *input != "" {
		sc, ok := workloads.Input[*input]
		if !ok {
			fatal(fmt.Errorf("unknown input %q (want test, train or ref)", *input))
		}
		*scale = sc
	}
	prog, err := loadProgram(*workload, *scale, flag.Args())
	if err != nil {
		fatal(err)
	}

	if *profFlag {
		pr, err := profile.Run(prog, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Print(pr.Render(0))
		return
	}

	switch *engine {
	case "emulate":
		insts, checksum, exit, err := fastsim.Emulate(prog, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("instructions: %d\nchecksum:     %#08x\nexit code:    %d\n",
			insts, checksum, exit)

	case "refsim":
		res, err := fastsim.RunReference(prog, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycles:       %d\ninstructions: %d\nIPC:          %.3f\n",
			res.Cycles, res.Insts, float64(res.Insts)/float64(res.Cycles))
		fmt.Printf("mispredicts:  %d\nchecksum:     %#08x\n", res.Mispredicts, res.Checksum)
		fmt.Printf("speed:        %.1f Kinsts/s (%v)\n", res.KInstsPerSec(), res.WallTime)

	case "fastsim", "slowsim":
		cfg := fastsim.DefaultConfig()
		cfg.Memoize = *engine == "fastsim"
		pol, err := memo.ParsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
		cfg.Memo = fastsim.MemoOptions{Policy: pol, Limit: *limit, Budget: *budget, VerifyRate: *verify, CompileThreshold: *compileN}
		cfg.SnapshotLoad = *memoLoad
		cfg.SnapshotSave = *memoSave
		var inj *fastsim.FaultInjector
		if *chaos != 0 {
			inj = fastsim.NewChaosInjector(*chaos)
			cfg.FaultInject = inj
			// Chaos default: verify every hit, so injected chain corruption
			// can never slip into the statistics unverified. An explicit
			// -verify (even 0) overrides.
			verifySet := false
			flag.Visit(func(f *flag.Flag) { verifySet = verifySet || f.Name == "verify" })
			if !verifySet {
				cfg.Memo.VerifyRate = 1
			}
		}
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			cfg.Trace = f
		}
		if *dot != "" {
			f, err := os.Create(*dot)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			cfg.MemoGraphDot = f
		}
		if *spanOut != "" {
			tb := fastsim.TimebaseCycles
			switch *spanTB {
			case "cycles":
			case "wall":
				tb = fastsim.TimebaseWall
			default:
				fatal(fmt.Errorf("unknown span timebase %q (want cycles or wall)", *spanTB))
			}
			f, err := os.Create(*spanOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			tr := fastsim.NewTracer(f, fastsim.TracerOptions{Timebase: tb, Name: "fastsim " + prog.Name})
			defer tr.Close()
			cfg.Tracer = tr
		}
		if *sample != "" || *events != "" || *progress || *debug != "" {
			var opt fastsim.ObserverOptions
			if *sample != "" {
				f, err := os.Create(*sample)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				opt.SampleW = f
				opt.SampleInterval = *interval
			}
			if *events != "" {
				f, err := os.Create(*events)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				opt.EventW = f
			}
			if *progress {
				opt.ProgressW = os.Stderr
			}
			if *debug != "" {
				opt.Publish = &fastsim.Published{}
				srv, err := debugsrv.Start(*debug, debugsrv.Options{
					Published: opt.Publish,
					Info: map[string]string{
						"program": prog.Name,
						"engine":  *engine,
						"policy":  *policy,
					},
				})
				if err != nil {
					fatal(err)
				}
				defer srv.Close()
				fmt.Fprintf(os.Stderr, "fastsim: debug server on http://%s/\n", srv.Addr())
			}
			cfg.Observer = fastsim.NewObserver(opt)
		}
		res, err := fastsim.Run(prog, fastsim.WithConfig(cfg))
		if inj != nil {
			fmt.Fprintln(os.Stderr, "fastsim:", inj.Summary())
		}
		if err != nil {
			fatal(err)
		}
		if res.Snapshot.Warning != "" {
			fmt.Fprintln(os.Stderr, "fastsim: warning:", res.Snapshot.Warning)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fatal(err)
			}
			return
		}
		printResult(res)
		if *hist {
			fmt.Println()
			fmt.Print(res.Cache.LoadLatency.Render("load latency (cycles)"))
			if res.Memoized {
				fmt.Println()
				fmt.Print(res.Memo.ChainHist.Render("replay chain length (actions)"))
			}
		}

	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
}

func loadProgram(workload string, scale float64, args []string) (*fastsim.Program, error) {
	if workload != "" {
		w, ok := fastsim.GetWorkload(workload)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (try -list)", workload)
		}
		return w.Build(scale)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("need exactly one program file or -workload (got %d args)", len(args))
	}
	if strings.HasSuffix(args[0], ".fsx") {
		f, err := os.Open(args[0])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return fastsim.ReadProgram(f, args[0])
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(args[0], ".mc") {
		return fastsim.CompileMinC(args[0], string(src))
	}
	return fastsim.Assemble(args[0], string(src))
}

func printResult(r *fastsim.Result) {
	fmt.Printf("cycles:        %d\n", r.Cycles)
	fmt.Printf("instructions:  %d (IPC %.3f)\n", r.Insts, r.IPC())
	fmt.Printf("loads/stores:  %d / %d\n", r.RetiredLoads, r.RetiredStores)
	fmt.Printf("branch pred:   %d predictions, %d mispredicts (%.2f%%)\n",
		r.BPredPredicts, r.BPredMispredicts,
		fastsim.Percent(r.BPredMispredicts, r.BPredPredicts))
	fmt.Printf("rollbacks:     %d (wrong-path insts: %d)\n",
		r.Direct.Rollbacks, r.Direct.WrongPathInsts)
	fmt.Printf("L1: %d hits / %d misses; L2: %d hits / %d misses\n",
		r.Cache.L1Hits, r.Cache.L1Misses, r.Cache.L2Hits, r.Cache.L2Misses)
	fmt.Printf("checksum:      %#08x (exit %d)\n", r.Checksum, r.ExitCode)
	fmt.Printf("speed:         %.1f Kinsts/s (%v)\n", r.KInstsPerSec(), r.WallTime)
	if r.Snapshot.Loaded {
		fmt.Printf("snapshot:      warm start — %d configs, %d actions, %d KB loaded\n",
			r.Snapshot.LoadedConfigs, r.Snapshot.LoadedActions, r.Snapshot.LoadedBytes>>10)
	}
	if r.Snapshot.Saved {
		fmt.Printf("snapshot:      saved %d KB\n", r.Snapshot.SavedBytes>>10)
	}
	if r.Memoized {
		m := r.Memo
		fmt.Printf("memoization:   %d configs, %d actions, %d KB (peak)\n",
			m.Configs, m.Actions, m.PeakBytes>>10)
		fmt.Printf("               detailed %.4f%% of instructions; avg chain %.0f, max %d\n",
			m.DetailedFraction()*100, m.AvgChain(), m.ChainMax)
		if m.Flushes+m.Collections > 0 {
			fmt.Printf("               %d flushes, %d collections\n", m.Flushes, m.Collections)
		}
		if m.EpisodesVerified+m.Quarantines > 0 {
			fmt.Printf("               verified %d episodes: %d divergences, %d quarantines (%d actions evicted)\n",
				m.EpisodesVerified, m.VerifyDivergences, m.Quarantines, m.QuarantinedActions)
		}
		if m.ChainsCompiled > 0 {
			fmt.Printf("               compiled %d chains (%d ops, %d KB): %d bytecode episodes, %d invalidations\n",
				m.ChainsCompiled, m.CompiledOps, m.CompiledBytes>>10, m.CompiledEpisodes, m.CompileInvalidations)
		}
		if m.GuardPressure+m.GuardDegraded > 0 {
			fmt.Printf("               guard: %d pressure transitions, %d degradations, %d detailed-only episodes\n",
				m.GuardPressure, m.GuardDegraded, m.DegradedEpisodes)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastsim:", err)
	os.Exit(1)
}
