// Command fssrv serves fastsim as a multi-tenant simulation service: a
// JSON HTTP API that accepts (program, machine configuration, options)
// jobs, runs them on a bounded worker pool with admission control and
// per-job deadlines, shares recorded p-action chains between tenants
// through the sharded shared cache, and — with -journal — survives
// crashes by recovering every accepted job from an fsynced append-only
// journal. See docs/SERVER.md for the API and job lifecycle.
//
// Usage:
//
//	fssrv -addr :8080                         # in-memory service
//	fssrv -addr :8080 -journal jobs.jsonl     # crash-safe job journal
//	fssrv -workers 8 -queue 128 -mem-budget 2147483648
//
// SIGTERM/SIGINT triggers a graceful drain: new submissions are shed
// with 503 draining, running jobs finish (up to -drain-timeout), then
// the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fastsim/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "simulation worker pool size (0 = server default)")
		queue      = flag.Int("queue", 0, "admission queue depth (0 = server default)")
		journal    = flag.String("journal", "", "crash-safe job journal path (empty = in-memory only)")
		memBudget  = flag.Int64("mem-budget", 0, "aggregate p-action cache byte budget across admitted jobs (0 = unlimited)")
		maxRetries = flag.Int("max-retries", 2, "transient-fault re-runs per job")
		timeout    = flag.Duration("job-timeout", 5*time.Minute, "default per-job deadline")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound before running jobs are cancelled")
		shards     = flag.Int("shards", 0, "shared p-action cache shards (0 = default, -1 = disable sharing)")
	)
	flag.Parse()

	s, err := server.New(server.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		JournalPath:    *journal,
		MemBudget:      *memBudget,
		MaxRetries:     *maxRetries,
		DefaultTimeout: *timeout,
		DrainTimeout:   *drain,
		SharedShards:   *shards,
	})
	if err != nil {
		fatal(err)
	}
	if st := s.Stats(); st.Recovered > 0 || st.JournalTorn > 0 {
		fmt.Fprintf(os.Stderr, "fssrv: journal recovery: %d jobs re-queued, %d torn lines dropped\n",
			st.Recovered, st.JournalTorn)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fssrv: serving on %s\n", *addr)

	select {
	case err := <-errc:
		_ = s.Close() //nolint:errcheck // already failing
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, shed new jobs, let the
	// pool finish, then exit.
	fmt.Fprintln(os.Stderr, "fssrv: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fssrv: http shutdown:", err)
	}
	if err := s.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "fssrv: drained")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fssrv:", err)
	os.Exit(1)
}
