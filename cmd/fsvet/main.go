// Command fsvet runs FastSim's determinism static-analysis suite over the
// simulation-core packages. Bit-identical replay is the repo's central
// invariant (see docs/DETERMINISM.md); fsvet turns it into a build-time
// check. The intraprocedural analyzers catch call-site hazards — map
// iteration that can leak order, wall-clock and global-rand reads, observer
// hooks that break the zero-allocation contract, exact floating-point
// comparison — and the interprocedural analyzers propagate function
// summaries across every loaded package: transitive wall-clock/rand taint
// with the offending call chain, purity of //fastsim:memo-policy decision
// points, and fastsim:guarded-by(mu) lock discipline on shared state.
//
// Usage:
//
//	go run ./cmd/fsvet ./...
//	go run ./cmd/fsvet ./internal/memo ./internal/obs
//	go run ./cmd/fsvet -sarif findings.sarif ./...
//	go run ./cmd/fsvet -write-baseline debt.json ./... && go run ./cmd/fsvet -baseline debt.json ./...
//	go run ./cmd/fsvet -list
//
// fsvet prints findings as "file:line:col: analyzer: message" and exits 1
// when there are any (2 on load errors), so it runs as a CI gate. A package
// pattern matching nothing in the vetted set is an error — a typo'd path
// must not green-light the build.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fastsim/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	sarifPath := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
	baselinePath := flag.String("baseline", "", "suppress findings recorded in this baseline file; report only new ones")
	writeBaseline := flag.String("write-baseline", "", "record current findings to this baseline file and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fsvet [-list] [-sarif file] [-baseline file | -write-baseline file] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the determinism analyzers over FastSim's simulation-core packages.\nWith no package arguments, vets all of them (equivalent to ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, az := range analysis.All {
			fmt.Printf("%-10s %s\n", az.Name, az.Doc)
		}
		return
	}
	if *baselinePath != "" && *writeBaseline != "" {
		fatal(fmt.Errorf("-baseline and -write-baseline are mutually exclusive"))
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.SelectPackages(patterns, modPath)
	if err != nil {
		fatal(err)
	}

	// Load the whole vetted universe once — interprocedural summaries must
	// propagate across every package boundary even when only a subset is
	// being reported on — then report per selected package.
	universe, vetted, err := analysis.LoadUniverse(root, modPath)
	if err != nil {
		fatal(err)
	}
	prog := analysis.BuildProgram(universe)

	var diags []analysis.Diagnostic
	for _, rel := range pkgs {
		for _, d := range analysis.CheckProgram(prog, vetted[rel], analysis.AnalyzersFor(rel)) {
			// Print paths relative to the invocation directory when
			// possible, so findings are clickable where fsvet ran.
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			diags = append(diags, d)
		}
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fatal(err)
		}
		if err := analysis.WriteBaseline(f, diags); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fsvet: wrote baseline of %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fatal(err)
		}
		base, err := analysis.ReadBaseline(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		diags = base.Filter(diags)
	}

	if *sarifPath != "" {
		w := os.Stdout
		if *sarifPath != "-" {
			f, err := os.Create(*sarifPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := analysis.WriteSARIF(w, diags, analysis.All); err != nil {
			fatal(err)
		}
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fsvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fsvet: %v\n", err)
	os.Exit(2)
}
