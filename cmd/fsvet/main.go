// Command fsvet runs FastSim's determinism static-analysis suite over the
// simulation-core packages. Bit-identical replay is the repo's central
// invariant (see docs/DETERMINISM.md); fsvet turns it into a build-time
// check: map iteration that can leak order, wall-clock and global-rand
// reads, observer hooks that break the zero-allocation contract, and exact
// floating-point comparison are all findings.
//
// Usage:
//
//	go run ./cmd/fsvet ./...
//	go run ./cmd/fsvet ./internal/memo ./internal/obs
//	go run ./cmd/fsvet -list
//
// fsvet prints findings as "file:line:col: analyzer: message" and exits 1
// when there are any (2 on load errors), so it runs as a CI gate. Package
// patterns outside the deterministic core are ignored.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fastsim/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fsvet [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the determinism analyzers over FastSim's simulation-core packages.\nWith no package arguments, vets all of them (equivalent to ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, az := range analysis.All {
			fmt.Printf("%-10s %s\n", az.Name, az.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	modPath, err := analysis.ModulePath(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs := analysis.SelectPackages(patterns, modPath)
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "fsvet: no deterministic packages match the given patterns")
		os.Exit(2)
	}

	findings, exit := 0, 0
	for _, rel := range pkgs {
		pkg, err := analysis.Load(filepath.Join(root, rel), modPath+"/"+rel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsvet: %v\n", err)
			exit = 2
			continue
		}
		for _, d := range analysis.Check(pkg, analysis.All) {
			// Print paths relative to the invocation directory when
			// possible, so findings are clickable where fsvet ran.
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "fsvet: %d finding(s) in %d package(s)\n", findings, len(pkgs))
		if exit == 0 {
			exit = 1
		}
	}
	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fsvet: %v\n", err)
	os.Exit(2)
}
