// Command fsinspect is the offline memo-cache inspector: it digests
// p-action snapshot files (.fsnap) and observability event streams (JSONL)
// without ever touching a live cache.
//
// Usage:
//
//	fsinspect -snapshot prog.fsnap            # chain shapes, hot chains, kinds
//	fsinspect -snapshot prog.fsnap -top 25    # widen the hot-chain listing
//	fsinspect -events run.events.jsonl        # episode/chain distributions, timeline
//	fsinspect -snapshot a.fsnap -events b.jsonl -json   # both, as one JSON object
//
// Snapshots are decoded through the fingerprint-free inspection path
// (integrity checks still apply), so any program's snapshot can be analyzed
// by any build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fastsim"
)

func main() {
	var (
		snapPath  = flag.String("snapshot", "", "p-action snapshot file to analyze")
		eventPath = flag.String("events", "", "JSONL event stream to analyze")
		topN      = flag.Int("top", 10, "hot chains to list from a snapshot")
		asJSON    = flag.Bool("json", false, "emit the report(s) as one JSON object")
	)
	flag.Parse()

	if *snapPath == "" && *eventPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var out struct {
		Snapshot *fastsim.SnapshotReport `json:"snapshot,omitempty"`
		Events   *fastsim.EventsReport   `json:"events,omitempty"`
	}

	if *snapPath != "" {
		snap, err := fastsim.OpenSnapshot(*snapPath)
		if err != nil {
			fatal(err)
		}
		out.Snapshot = snap.Report(*topN)
	}
	if *eventPath != "" {
		f, err := os.Open(*eventPath)
		if err != nil {
			fatal(err)
		}
		rep, err := fastsim.AnalyzeEvents(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		out.Events = rep
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&out); err != nil {
			fatal(err)
		}
		return
	}
	if out.Snapshot != nil {
		out.Snapshot.Render(os.Stdout)
	}
	if out.Events != nil {
		if out.Snapshot != nil {
			fmt.Println()
		}
		out.Events.Render(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsinspect:", err)
	os.Exit(1)
}
