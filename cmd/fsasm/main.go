// Command fsasm assembles and disassembles SV8 programs.
//
// Usage:
//
//	fsasm prog.s             # assemble; print a summary
//	fsasm -d prog.s          # assemble and print the disassembly
//	fsasm -run prog.s        # assemble and execute functionally
//	fsasm -workload 099.go   # disassemble a built-in workload
//	fsasm -src 107.mgrid     # print a built-in workload's generated source
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fastsim"
)

func main() {
	var (
		dis      = flag.Bool("d", false, "print disassembly")
		out      = flag.String("o", "", "write the assembled program to a binary .fsx file")
		run      = flag.Bool("run", false, "execute the program functionally")
		workload = flag.String("workload", "", "use a built-in workload instead of a file")
		src      = flag.String("src", "", "print a built-in workload's generated assembly source")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
	)
	flag.Parse()

	if *src != "" {
		w, ok := fastsim.GetWorkload(*src)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *src))
		}
		fmt.Print(w.Source(*scale))
		return
	}

	var prog *fastsim.Program
	var err error
	switch {
	case *workload != "":
		w, ok := fastsim.GetWorkload(*workload)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *workload))
		}
		prog, err = w.Build(*scale)
	case flag.NArg() == 1:
		arg := flag.Arg(0)
		if strings.HasSuffix(arg, ".fsx") {
			var f *os.File
			if f, err = os.Open(arg); err == nil {
				prog, err = fastsim.ReadProgram(f, arg)
				f.Close()
			}
		} else if strings.HasSuffix(arg, ".mc") {
			var b []byte
			if b, err = os.ReadFile(arg); err == nil {
				prog, err = fastsim.CompileMinC(arg, string(b))
			}
		} else {
			var b []byte
			if b, err = os.ReadFile(arg); err == nil {
				prog, err = fastsim.Assemble(arg, string(b))
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s: %d instructions (%d bytes text), %d bytes data, entry %#x\n",
		prog.Name, len(prog.Text), 4*len(prog.Text), len(prog.Data), prog.Entry)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := fastsim.WriteProgram(f, prog); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *dis {
		fmt.Print(fastsim.Disassemble(prog))
	}
	if *run {
		insts, checksum, exit, err := fastsim.Emulate(prog, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("executed %d instructions; checksum %#08x; exit %d\n",
			insts, checksum, exit)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsasm:", err)
	os.Exit(1)
}
