package fastsim

import (
	"io"

	"fastsim/internal/core"
	"fastsim/internal/snapshot"
)

// Option configures a simulation run. Options apply in order on top of
// DefaultConfig, so later options win; WithConfig replaces the whole
// configuration and is therefore usually first, if present at all.
type Option func(*Config)

// Configuration sentinels, matched with errors.Is.
var (
	// ErrBadConfig wraps every configuration-validation failure.
	ErrBadConfig = core.ErrBadConfig
	// ErrSnapshotVersion reports a snapshot written by an incompatible
	// format version. Run only returns it under WithSnapshotStrict; the
	// default is a cold-start fallback recorded in Result.Snapshot.Warning.
	ErrSnapshotVersion = snapshot.ErrVersion
	// ErrSnapshotCorrupt reports a truncated or bit-damaged snapshot file.
	// Like ErrSnapshotVersion it only surfaces under WithSnapshotStrict.
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
)

// WithConfig replaces the entire configuration, for callers migrating from
// the struct-based API or holding a fully built Config. Later options still
// apply on top of it.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithMemoize enables or disables fast-forwarding: true is FastSim (the
// default), false is the SlowSim baseline.
func WithMemoize(on bool) Option {
	return func(c *Config) { c.Memoize = on }
}

// WithPolicy selects the p-action cache replacement policy (§4.3) and its
// byte limit; limit <= 0 means unlimited (forced for PolicyUnbounded).
func WithPolicy(p MemoPolicy, limit int) Option {
	return func(c *Config) {
		c.Memo.Policy = p
		c.Memo.Limit = limit
	}
}

// WithMemoOptions replaces the full p-action cache configuration, for
// settings beyond WithPolicy (e.g. the generational major-collection
// cadence).
func WithMemoOptions(o MemoOptions) Option {
	return func(c *Config) { c.Memo = o }
}

// WithPipeline replaces the out-of-order pipeline parameters.
func WithPipeline(p PipelineParams) Option {
	return func(c *Config) { c.Uarch = p }
}

// WithCache replaces the cache-hierarchy configuration.
func WithCache(cc CacheConfig) Option {
	return func(c *Config) { c.Cache = cc }
}

// WithBPred replaces the branch-predictor configuration.
func WithBPred(b core.BPredConfig) Option {
	return func(c *Config) { c.BPred = b }
}

// WithObserver attaches the observability layer (metrics, sampler, events,
// heartbeat); it is read-only, so the Result is unchanged by it.
func WithObserver(o *Observer) Option {
	return func(c *Config) { c.Observer = o }
}

// WithTrace streams a pipetrace to w: per-cycle lines for detailed cycles
// and one marker line per fast-forward chain (see Config.Trace).
func WithTrace(w io.Writer) Option {
	return func(c *Config) { c.Trace = w }
}

// WithTracer attaches a span tracer (see Tracer); the caller owns it and
// must Close it after the run. Like WithObserver it is read-only, so the
// Result is unchanged by it. For the common stream-to-a-writer case,
// WithSpanTraceTo builds and closes the tracer for you.
func WithTracer(t *Tracer) Option {
	return func(c *Config) {
		c.Tracer = t
		c.TracerOwned = false
	}
}

// WithSpanTraceTo streams a span trace of the run to w in Chrome
// trace-event JSON: a Tracer is built with the given timebase when the run
// starts and closed (terminating the JSON array and flushing) before Run
// returns, on every path. A close failure on an otherwise successful run
// surfaces as the run error, so a truncated trace is never silent. Unlike
// the deprecated WithSpanTrace this is a single composable value — no
// tracer handle to thread through; use WithSpanTraceInto to also observe
// the tracer (e.g. its event count) after the run.
func WithSpanTraceTo(w io.Writer, tb Timebase) Option {
	return func(c *Config) {
		c.Tracer = NewTracer(w, TracerOptions{Timebase: tb})
		c.TracerOwned = true
	}
}

// WithSpanTraceInto is WithSpanTraceTo with an out-parameter: *out is set
// to the run-owned tracer when the option applies, so the caller can read
// Events() after the run. The run still closes the tracer itself (Close is
// idempotent — closing again is a harmless no-op).
func WithSpanTraceInto(w io.Writer, tb Timebase, out **Tracer) Option {
	return func(c *Config) {
		t := NewTracer(w, TracerOptions{Timebase: tb})
		c.Tracer = t
		c.TracerOwned = true
		if out != nil {
			*out = t
		}
	}
}

// WithSpanTrace is the original two-value span-trace form: it builds a
// Tracer on w and returns both the option and the tracer, which the caller
// must Close after the run.
//
// Deprecated: use WithSpanTraceTo (run-owned, single value) or
// WithSpanTraceInto (run-owned with a tracer out-parameter); this form
// survives for source compatibility only.
func WithSpanTrace(w io.Writer, tb Timebase) (Option, *Tracer) {
	t := NewTracer(w, TracerOptions{Timebase: tb})
	return WithTracer(t), t
}

// WithMemoGraphDot writes the final p-action graph in Graphviz DOT format
// to w after a memoized run; maxConfigs bounds the export (0 means 64).
func WithMemoGraphDot(w io.Writer, maxConfigs int) Option {
	return func(c *Config) {
		c.MemoGraphDot = w
		c.MemoGraphMax = maxConfigs
	}
}

// WithMaxCycles bounds the simulation (0 keeps the large default).
func WithMaxCycles(n uint64) Option {
	return func(c *Config) { c.MaxCycles = n }
}

// WithSnapshot persists the p-action cache at path across runs: load it
// before simulating (cold start if the file is missing or rejected) and
// save it back afterwards. Equivalent to WithSnapshotLoad(path) plus
// WithSnapshotSave(path).
func WithSnapshot(path string) Option {
	return func(c *Config) {
		c.SnapshotLoad = path
		c.SnapshotSave = path
	}
}

// WithSnapshotLoad warm-starts the p-action cache from the snapshot at
// path. A missing file is a silent cold start; a corrupt, version-skewed
// or mismatched file falls back to a cold start with
// Result.Snapshot.Warning set — the Result is bit-identical either way.
func WithSnapshotLoad(path string) Option {
	return func(c *Config) { c.SnapshotLoad = path }
}

// WithSnapshotSave writes the final p-action cache to path after a
// successful run, atomically (temp file + fsync + rename). Cancelled or
// failed runs write nothing.
func WithSnapshotSave(path string) Option {
	return func(c *Config) { c.SnapshotSave = path }
}

// WithSnapshotStrict turns rejected snapshot loads into run errors
// (ErrSnapshotCorrupt, ErrSnapshotVersion, ...) instead of cold-start
// fallbacks — for benchmarks and CI jobs that must know their warm start
// actually happened.
func WithSnapshotStrict() Option {
	return func(c *Config) { c.SnapshotStrict = true }
}

// WithMemoBudget sets a hard memory bound (bytes) on the p-action cache,
// enforced for every replacement policy by watermark-driven guard levels:
// above 3/4 of the budget collections are forced; if reclaiming cannot get
// back under 7/8 the engine degrades to detailed-only simulation until a
// retry collection frees space. Unlike WithPolicy's limit — which a policy
// may overshoot or ignore — the budget always holds: Result.Memo.PeakBytes
// never exceeds it, and the Result stays bit-identical. n <= 0 disables the
// guard. See docs/ROBUSTNESS.md.
func WithMemoBudget(n int) Option {
	return func(c *Config) { c.Memo.Budget = n }
}

// WithReplayCompile enables flat replay bytecode: once fast-forwarding has
// entered a p-action chain threshold times, the chain is compiled into a
// contiguous buffer (actions inline, branch targets as buffer offsets) and
// replayed by a tight loop with no pointer loads. Results stay bit-identical
// under every policy — compiled buffers are invalidated whenever their chain
// changes and rebuilt on demand. threshold 0 disables (the default);
// 1 compiles on first replay. See docs/API.md and docs/PERFORMANCE.md.
func WithReplayCompile(threshold int) Option {
	return func(c *Config) { c.Memo.CompileThreshold = threshold }
}

// WithShadowVerify re-executes the given fraction of cache hits through the
// detailed simulator (instead of replaying them), cross-checking the cached
// chain action by action. A divergence quarantines the chain — it is
// atomically evicted and re-memoized from scratch — and the run continues
// on the detailed (ground-truth) results. rate 1 verifies every hit, so no
// corrupt chain can ever influence a statistic; sampling is deterministic
// (every k-th hit), never random. See docs/ROBUSTNESS.md.
func WithShadowVerify(rate float64) Option {
	return func(c *Config) { c.Memo.VerifyRate = rate }
}

// WithSharedCache attaches a process-wide shared p-action cache: before
// simulating, the run imports the graph published for its (program, machine)
// fingerprint — a warm start exactly like WithSnapshotLoad, but fed by
// concurrent runs instead of a file — and after a successful run it offers
// its merged graph back under epoch-based publication. A run that
// quarantined any chain instead poisons the epoch it imported, so a corrupt
// chain is never shared. Sharing changes speed and Result.Memo accounting,
// never the simulation Result: warm starts are bit-identical to cold runs.
// An explicit WithSnapshotLoad takes precedence over the shared cache.
// A nil sc is ignored. See docs/SERVER.md.
func WithSharedCache(sc *SharedCache) Option {
	return func(c *Config) { c.Shared = sc }
}

// WithFaultInjection arms deterministic fault injection at every site the
// run passes through: memo allocation failures, chain bit flips, and
// snapshot IO faults. For chaos testing only — see NewChaosInjector and
// docs/ROBUSTNESS.md. Every injected fault ends in a self-healed
// bit-identical Result or a typed error, never a silently wrong statistic.
func WithFaultInjection(inj *FaultInjector) Option {
	return func(c *Config) { c.FaultInject = inj }
}

// buildConfig folds opts over DefaultConfig.
func buildConfig(opts []Option) Config {
	cfg := core.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}
