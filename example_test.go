package fastsim_test

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"fastsim"
)

// The exactness property: FastSim and SlowSim agree cycle for cycle.
func ExampleRun() {
	prog, err := fastsim.Assemble("sum.s", `
main:
	li   t0, 100
	li   t1, 0
loop:
	add  t1, t1, t0
	addi t0, t0, -1
	bnez t0, loop
	mv   a0, t1
	sys  2
	li   a0, 0
	halt
`)
	if err != nil {
		log.Fatal(err)
	}

	fast, err := fastsim.Run(prog)
	if err != nil {
		log.Fatal(err)
	}

	slow, err := fastsim.Run(prog, fastsim.WithMemoize(false))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("identical cycles:", fast.Cycles == slow.Cycles)
	fmt.Println("checksum:", fast.Checksum == slow.Checksum)
	// Output:
	// identical cycles: true
	// checksum: true
}

// Functional emulation is the semantic oracle.
func ExampleEmulate() {
	prog, err := fastsim.Assemble("answer.s", `
main:
	li  a0, 42
	sys 2
	li  a0, 0
	halt
`)
	if err != nil {
		log.Fatal(err)
	}
	insts, _, exit, err := fastsim.Emulate(prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(insts, "instructions, exit", exit)
	// Output:
	// 6 instructions, exit 0
}

// Bounding the p-action cache with the paper's flush-on-full policy trades
// speed for memory, never accuracy.
func ExampleMemoOptions() {
	w, _ := fastsim.GetWorkload("129.compress")
	prog, err := w.Build(0.05)
	if err != nil {
		log.Fatal(err)
	}

	unbounded, err := fastsim.Run(prog)
	if err != nil {
		log.Fatal(err)
	}

	bounded, err := fastsim.Run(prog, fastsim.WithPolicy(fastsim.PolicyFlush, 32<<10))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("same cycle count:", unbounded.Cycles == bounded.Cycles)
	fmt.Println("flushed:", bounded.Memo.Flushes > 0)
	// Output:
	// same cycle count: true
	// flushed: true
}

// Hot p-action chains can be compiled into flat replay bytecode; the Result
// stays bit-identical to the pointer walk.
func ExampleWithReplayCompile() {
	w, _ := fastsim.GetWorkload("129.compress")
	prog, err := w.Build(0.05)
	if err != nil {
		log.Fatal(err)
	}

	pointer, err := fastsim.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := fastsim.Run(prog, fastsim.WithReplayCompile(1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("same cycle count:", pointer.Cycles == compiled.Cycles)
	fmt.Println("chains compiled:", compiled.Memo.ChainsCompiled > 0)
	// Output:
	// same cycle count: true
	// chains compiled: true
}

// WithSpanTraceTo streams a Chrome trace-event span trace of the run; the
// tracer is owned and closed by the run, so one composable option is all it
// takes.
func ExampleWithSpanTraceTo() {
	prog, err := fastsim.Assemble("spin.s", `
main:
	li   t0, 50
loop:
	addi t0, t0, -1
	bnez t0, loop
	li   a0, 0
	halt
`)
	if err != nil {
		log.Fatal(err)
	}

	var trace bytes.Buffer
	if _, err := fastsim.Run(prog, fastsim.WithSpanTraceTo(&trace, fastsim.TimebaseCycles)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("trace is a JSON array:", strings.HasPrefix(trace.String(), "["))
	fmt.Println("has spans:", strings.Contains(trace.String(), `"ph"`))
	// Output:
	// trace is a JSON array: true
	// has spans: true
}

// A shared p-action cache lets runs of the same (program, configuration)
// warm each other: the first run records and publishes, later runs replay
// the published chains. Sharing changes wall time, never statistics.
func ExampleWithSharedCache() {
	w, _ := fastsim.GetWorkload("129.compress")
	prog, err := w.Build(0.05)
	if err != nil {
		log.Fatal(err)
	}

	shared := fastsim.NewSharedCache(4)
	first, err := fastsim.Run(prog, fastsim.WithSharedCache(shared))
	if err != nil {
		log.Fatal(err)
	}
	second, err := fastsim.Run(prog, fastsim.WithSharedCache(shared))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("first published:", first.Shared.Published)
	fmt.Println("second warmed:", second.Shared.Warmed)
	fmt.Println("identical cycles:", first.Cycles == second.Cycles)
	// Output:
	// first published: true
	// second warmed: true
	// identical cycles: true
}

// OpenSnapshot examines a snapshot file offline — integrity-checked, no
// live cache, no fingerprint requirement.
func ExampleOpenSnapshot() {
	w, _ := fastsim.GetWorkload("129.compress")
	prog, err := w.Build(0.05)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "fsnap-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "cache.fsnap")
	if _, err := fastsim.Run(prog, fastsim.WithSnapshotSave(path)); err != nil {
		log.Fatal(err)
	}

	snap, err := fastsim.OpenSnapshot(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("has configurations:", snap.Configs() > 0)
	fmt.Println("has actions:", snap.Actions() > 0)
	// Output:
	// has configurations: true
	// has actions: true
}
