package fastsim_test

import (
	"fmt"
	"log"

	"fastsim"
)

// The exactness property: FastSim and SlowSim agree cycle for cycle.
func ExampleRun() {
	prog, err := fastsim.Assemble("sum.s", `
main:
	li   t0, 100
	li   t1, 0
loop:
	add  t1, t1, t0
	addi t0, t0, -1
	bnez t0, loop
	mv   a0, t1
	sys  2
	li   a0, 0
	halt
`)
	if err != nil {
		log.Fatal(err)
	}

	fast, err := fastsim.Run(prog)
	if err != nil {
		log.Fatal(err)
	}

	slow, err := fastsim.Run(prog, fastsim.WithMemoize(false))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("identical cycles:", fast.Cycles == slow.Cycles)
	fmt.Println("checksum:", fast.Checksum == slow.Checksum)
	// Output:
	// identical cycles: true
	// checksum: true
}

// Functional emulation is the semantic oracle.
func ExampleEmulate() {
	prog, err := fastsim.Assemble("answer.s", `
main:
	li  a0, 42
	sys 2
	li  a0, 0
	halt
`)
	if err != nil {
		log.Fatal(err)
	}
	insts, _, exit, err := fastsim.Emulate(prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(insts, "instructions, exit", exit)
	// Output:
	// 6 instructions, exit 0
}

// Bounding the p-action cache with the paper's flush-on-full policy trades
// speed for memory, never accuracy.
func ExampleMemoOptions() {
	w, _ := fastsim.GetWorkload("129.compress")
	prog, err := w.Build(0.05)
	if err != nil {
		log.Fatal(err)
	}

	unbounded, err := fastsim.Run(prog)
	if err != nil {
		log.Fatal(err)
	}

	bounded, err := fastsim.Run(prog, fastsim.WithPolicy(fastsim.PolicyFlush, 32<<10))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("same cycle count:", unbounded.Cycles == bounded.Cycles)
	fmt.Println("flushed:", bounded.Memo.Flushes > 0)
	// Output:
	// same cycle count: true
	// flushed: true
}
