module fastsim

go 1.22
