package fastsim

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOptionsSnapshotRoundTrip(t *testing.T) {
	prog, err := Assemble("demo.s", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "demo.fsnap")

	cold, err := Run(prog, WithSnapshot(path))
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Snapshot.Saved {
		t.Fatalf("no snapshot saved: %+v", cold.Snapshot)
	}
	warm, err := Run(prog, WithSnapshot(path), WithSnapshotStrict())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Snapshot.Loaded {
		t.Fatalf("no snapshot loaded: %+v", warm.Snapshot)
	}
	if warm.Cycles != cold.Cycles || warm.Checksum != cold.Checksum {
		t.Errorf("warm run diverged: %d/%d cycles, %#x/%#x checksum",
			warm.Cycles, cold.Cycles, warm.Checksum, cold.Checksum)
	}
}

func TestOptionsSentinels(t *testing.T) {
	prog, err := Assemble("demo.s", demoSrc)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Run(prog, WithMaxCycles(1), WithPipeline(PipelineParams{})); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero pipeline params: got %v, want ErrBadConfig", err)
	}

	bad := filepath.Join(t.TempDir(), "bad.fsnap")
	if err := os.WriteFile(bad, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Run(prog, WithSnapshotLoad(bad), WithSnapshotStrict())
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("garbage snapshot: got %v, want ErrSnapshotCorrupt", err)
	}
	// Non-strict: same file degrades to a warning.
	res, err := Run(prog, WithSnapshotLoad(bad))
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Warning == "" {
		t.Error("no warning on fallback")
	}
}

func TestOptionsOrderingAndRunConfig(t *testing.T) {
	prog, err := Assemble("demo.s", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Later options win over WithConfig.
	cfg := DefaultConfig()
	cfg.Memoize = true
	res, err := Run(prog, WithConfig(cfg), WithMemoize(false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Memoized {
		t.Error("later option did not override WithConfig")
	}

	// RunConfig is the struct-based path; results agree with Run.
	viaOpts, err := Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	viaCfg, err := RunConfig(prog, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if viaOpts.Cycles != viaCfg.Cycles {
		t.Errorf("Run and RunConfig disagree: %d vs %d cycles", viaOpts.Cycles, viaCfg.Cycles)
	}
}

func TestOptionsSharedCache(t *testing.T) {
	prog, err := Assemble("demo.s", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSharedCache(2)
	first, err := Run(prog, WithSharedCache(sc))
	if err != nil {
		t.Fatal(err)
	}
	if !first.Shared.Published {
		t.Error("first run did not publish to the shared cache")
	}
	second, err := Run(prog, WithSharedCache(sc))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Shared.Warmed {
		t.Error("second run did not warm from the shared cache")
	}
	if first.Cycles != second.Cycles || first.Checksum != second.Checksum {
		t.Errorf("shared warm run diverged: %d/%d cycles, %d/%d checksum",
			first.Cycles, second.Cycles, first.Checksum, second.Checksum)
	}
	// Sharing composes with SlowSim only trivially: with memoization off
	// the cache is never consulted.
	slow, err := Run(prog, WithSharedCache(sc), WithMemoize(false))
	if err != nil {
		t.Fatal(err)
	}
	if slow.Shared.Warmed || slow.Shared.Published {
		t.Error("SlowSim run touched the shared cache")
	}
	if slow.Cycles != first.Cycles {
		t.Errorf("SlowSim disagrees with shared FastSim: %d vs %d", slow.Cycles, first.Cycles)
	}
	st := sc.Stats()
	if st.Publishes == 0 || st.Warm == 0 {
		t.Errorf("shared stats missing activity: %+v", st)
	}
}

func TestRunContextCancellation(t *testing.T) {
	prog, err := Assemble("demo.s", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, prog); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// A background context behaves exactly like Run.
	if _, err := RunContext(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
}
